// Benchmarks regenerating every table and figure of the paper (one bench
// per experiment row of DESIGN.md §3). Absolute times depend on the host;
// the *shape* — layered beating centralized, worker scaling, spam metrics
// — is asserted by the test suite and recorded in EXPERIMENTS.md.
package lmmrank

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"lmmrank/internal/blockrank"
	"lmmrank/internal/experiments"
	"lmmrank/internal/hits"
	"lmmrank/internal/lmm"
	"lmmrank/internal/rankutil"
	"lmmrank/internal/webgen"
)

// benchWeb is the bench-scale campus web: the paper's structure at a size
// every benchmark can afford (≈6k docs). Regenerated once per process.
var benchWebCache *webgen.Web

func benchWeb() *webgen.Web {
	if benchWebCache == nil {
		benchWebCache = webgen.Generate(webgen.Config{
			Seed:                2005,
			Sites:               100,
			MeanSitePages:       30,
			AuthorityPages:      8,
			IntraLinksPerPage:   3,
			InterLinkFraction:   0.25,
			DynamicClusterPages: 1000,
			DocClusterPages:     1000,
		})
	}
	return benchWebCache
}

// BenchmarkE1Fig2 regenerates the §2.3 worked example (Figure 2): all
// four approaches on the 12-state model.
func BenchmarkE1Fig2(b *testing.B) {
	approaches := []struct {
		name string
		fn   func(*Model, Config) (*Ranking, error)
	}{
		{"Approach1_PageRankOnW", Approach1},
		{"Approach2_DirectPowerOnW", Approach2},
		{"Approach3_AdjustedCompose", Approach3},
		{"Approach4_LayeredMethod", LayeredMethod},
	}
	for _, a := range approaches {
		b.Run(a.name, func(b *testing.B) {
			model := PaperExample()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := a.fn(model, Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3Fig3FlatPageRank regenerates Figure 3's ranking: flat
// PageRank over the full campus web.
func BenchmarkE3Fig3FlatPageRank(b *testing.B) {
	web := benchWeb()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lmm.GlobalPageRank(web.Graph, lmm.WebConfig{Tol: 1e-9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Fig4LayeredDocRank regenerates Figure 4's ranking: the
// layered method (SiteRank + parallel local DocRanks + composition).
func BenchmarkE4Fig4LayeredDocRank(b *testing.B) {
	web := benchWeb()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{Tol: 1e-9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5SpamMetrics measures the contamination@k evaluation of both
// rankings (the Figure 3/4 comparison metrics).
func BenchmarkE5SpamMetrics(b *testing.B) {
	web := benchWeb()
	flat, err := lmm.GlobalPageRank(web.Graph, lmm.WebConfig{Tol: 1e-9})
	if err != nil {
		b.Fatal(err)
	}
	layered, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{Tol: 1e-9})
	if err != nil {
		b.Fatal(err)
	}
	flags := web.SpamFlags()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rankutil.ContaminationAtK(flat.Scores, flags, 15)
		_ = rankutil.ContaminationAtK(layered.DocRank, flags, 15)
		_ = rankutil.KendallTau(flat.Scores[:1000], layered.DocRank[:1000])
	}
}

// BenchmarkE6CentralizedVsLayered times Approach 2 (power method on the
// dense global W) against Approach 4 (the Layered Method) across model
// sizes — the §2.3.3 complexity claim.
func BenchmarkE6CentralizedVsLayered(b *testing.B) {
	sizes := []experiments.ModelSize{
		{Phases: 5, SubStates: 10},
		{Phases: 10, SubStates: 20},
		{Phases: 20, SubStates: 40},
	}
	for _, size := range sizes {
		model := experiments.BenchModel(size, 1)
		name := fmt.Sprintf("states=%d", model.TotalStates())
		b.Run("centralized/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Approach2(model, Config{Tol: 1e-10}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("layered/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := LayeredMethod(model, Config{Tol: 1e-10}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Distributed measures the distributed pipeline end to end
// over loopback TCP for growing worker fleets.
func BenchmarkE7Distributed(b *testing.B) {
	web := benchWeb()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cl, err := StartCluster(workers)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Coord.Rank(web.Graph, DistConfig{Tol: 1e-9}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11AsyncSiteRank compares the barrier-free asynchronous
// SiteRank protocol (concurrent and seeded-ordered schedules) against
// the synchronous barrier rounds on the same loopback fleet. Loopback
// has no straggler, so this measures the protocols' overhead floor;
// the chaos straggler tests pin the win when a worker is slow.
func BenchmarkE11AsyncSiteRank(b *testing.B) {
	web := benchWeb()
	cfgs := []struct {
		name string
		cfg  DistConfig
	}{
		{"sync", DistConfig{DistributedSiteRank: true, Tol: 1e-9}},
		{"async", DistConfig{SiteRank: SiteRankAsync, Tol: 1e-9}},
		{"asyncOrdered", DistConfig{SiteRank: SiteRankAsync, AsyncOrdered: true, AsyncSeed: 1, Tol: 1e-9}},
	}
	for _, tc := range cfgs {
		b.Run(tc.name, func(b *testing.B) {
			cl, err := StartCluster(4)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Coord.Rank(web.Graph, tc.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12Partition ranks a planted-block web through a real
// 4-worker cluster under each placement strategy. The ns/op spread shows
// what strategy choice costs end to end; the cut-frac metric records the
// placement quality each one buys (aggregate should sit far below host).
func BenchmarkE12Partition(b *testing.B) {
	web := GenerateCampusWeb(CampusWebConfig{
		Seed:              13,
		Blocky:            true,
		Sites:             48,
		Blocks:            8,
		MeanSitePages:     12,
		IntraLinksPerPage: 3,
		InterLinkFraction: 0.3,
	})
	cfgs := []struct {
		name string
		cfg  DistConfig
	}{
		{"host", DistConfig{Tol: 1e-9, Partition: HostPartition{}}},
		{"balanced", DistConfig{Tol: 1e-9, Partition: BalancedPartition{}}},
		{"aggregate", DistConfig{Tol: 1e-9, Partition: AggregatePartition{Seed: 1}}},
	}
	for _, tc := range cfgs {
		b.Run(tc.name, func(b *testing.B) {
			cl, err := StartCluster(4)
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			var cutFrac float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cl.Coord.Rank(web.Graph, tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				cutFrac = res.Stats.CutFraction
			}
			b.ReportMetric(cutFrac, "cut-frac")
		})
	}
}

// BenchmarkE8Personalization measures the two-layer personalized pipeline
// against the uniform one.
func BenchmarkE8Personalization(b *testing.B) {
	web := benchWeb()
	sitePers := make(Vector, web.Graph.NumSites())
	for i := range sitePers {
		sitePers[i] = 1 / float64(len(sitePers))
	}
	sitePers[1] *= 3
	sitePers.Normalize()
	b.Run("uniform", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{Tol: 1e-9}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("site-personalized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := lmm.WebConfig{Tol: 1e-9, SitePersonalization: sitePers}
			if _, err := lmm.LayeredDocRank(web.Graph, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The serving path: one precomputed Ranker answering repeated
	// personalized queries — the setup cost (SiteGraph, subgraphs, CSR
	// matrices) is paid once, outside the loop.
	b.Run("ranker-personalized", func(b *testing.B) {
		rk, err := NewRanker(web.Graph, RankerOptions{})
		if err != nil {
			b.Fatal(err)
		}
		cfg := lmm.WebConfig{Tol: 1e-9, SitePersonalization: sitePers}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rk.Rank(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineParallel measures the concurrent serving path: one
// LocalEngine answering the repeated-query workload from b.RunParallel
// goroutines (GOMAXPROCS of them by default). Per-query local fan-out is
// pinned to 1 — under load the cores are already busy answering distinct
// queries — so throughput should scale with GOMAXPROCS while the
// single-proc numbers stay comparable to E8's ranker-personalized case
// (the same work plus the caller-owned result copy).
func BenchmarkEngineParallel(b *testing.B) {
	web := benchWeb()
	sitePers := make(Vector, web.Graph.NumSites())
	for i := range sitePers {
		sitePers[i] = 1 / float64(len(sitePers))
	}
	sitePers[1] *= 3
	sitePers.Normalize()

	queries := []struct {
		name string
		q    Query
	}{
		{"uniform", Query{Tol: 1e-9}},
		{"site-personalized", Query{Tol: 1e-9, SitePersonalization: sitePers}},
		{"topk", Query{Tol: 1e-9, TopK: 15}},
	}
	for _, bench := range queries {
		b.Run(bench.name, func(b *testing.B) {
			eng, err := NewLocalEngine(web.Graph, EngineOptions{Parallelism: 1})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			// Warm the pool's first scratch before timing.
			if _, err := eng.Rank(ctx, bench.q); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := eng.Rank(ctx, bench.q); err != nil {
						// Fatal would Goexit the wrong goroutine here;
						// Error + return is the RunParallel-safe form.
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// churnBenchWeb generates a private web per churn sub-benchmark (the
// shared benchWeb must stay immutable — other benchmarks reuse it).
func churnBenchWeb(seed int64) *webgen.Web {
	return webgen.Generate(webgen.Config{
		Seed:                seed,
		Sites:               80,
		MeanSitePages:       25,
		AuthorityPages:      6,
		IntraLinksPerPage:   2,
		InterLinkFraction:   0.25,
		DynamicClusterPages: 300,
		DocClusterPages:     300,
	})
}

// churnEdit applies one deterministic 1-site edit (two intra-site links)
// and returns the changed site.
func churnEdit(dg *DocGraph, i int) SiteID {
	site := SiteID(i % 80)
	docs := dg.Sites[site].Docs
	if len(docs) >= 3 {
		a, b, c := int(docs[i%len(docs)]), int(docs[(i+1)%len(docs)]), int(docs[(i+2)%len(docs)])
		if a != b {
			dg.G.AddLink(a, b)
		}
		if b != c {
			dg.G.AddLink(b, c)
		}
	}
	return site
}

// BenchmarkE9ChurnUpdate measures the churn serving path: after a 1-site
// edit, "cold-rebuild" pays a full NewLocalEngine + query, while
// "warm-update" runs Engine.Update — only the dirty site's structure
// rebuilds and the refresh solve warm-starts from the previous solution
// — for the same <1e-9 ranking. The gap (time and allocs) is the E-series
// record of what incremental serving buys.
func BenchmarkE9ChurnUpdate(b *testing.B) {
	ctx := context.Background()
	b.Run("cold-rebuild", func(b *testing.B) {
		web := churnBenchWeb(2026)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			churnEdit(web.Graph, i)
			eng, err := NewLocalEngine(web.Graph, EngineOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Rank(ctx, Query{Tol: 1e-9}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-update", func(b *testing.B) {
		web := churnBenchWeb(2026)
		eng, err := NewLocalEngine(web.Graph, EngineOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Rank(ctx, Query{Tol: 1e-9}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			site := churnEdit(web.Graph, i)
			if err := eng.Update(ctx, GraphDelta{ChangedSites: []SiteID{site}}); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Rank(ctx, Query{Tol: 1e-9}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// / BenchmarkE10UpdateUnderLoad measures what snapshot serving buys: the
// per-query cost of Rank while a background churner runs Apply-path
// Updates back to back. Under the old drain-and-swap engine every
// Update stalled all queries for its full rebuild + refresh solve (and
// waited for them in turn); with copy-on-write snapshots queries never
// wait, so the number here stays in the neighborhood of an un-churned
// Rank instead of absorbing the update latency cliff.
func BenchmarkE10UpdateUnderLoad(b *testing.B) {
	ctx := context.Background()
	web := churnBenchWeb(2027)
	eng, err := NewLocalEngine(web.Graph, EngineOptions{Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Rank(ctx, Query{Tol: 1e-9}); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			i := i
			err := eng.Update(ctx, GraphDelta{
				ChangedSites: []SiteID{SiteID(i % 80)},
				Apply: func(dg *DocGraph) error {
					churnEdit(dg, i)
					return nil
				},
			})
			if err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := eng.Rank(ctx, Query{Tol: 1e-9}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkE13TenantServing measures the per-tenant serving kit end to
// end: a TopKIndex engine with keyed admission (4 tenants under quota)
// and similarity coalescing, answering a parallel mix of uniform and
// site-personalized top-k queries from the maintained index while a
// background churner keeps publishing 1-site Updates that patch it.
// This is the serving configuration the PR-10 gate pins: top-k queries
// skip the full re-rank, similar personalizations share one site-layer
// solve, and Updates never drain the query stream.
func BenchmarkE13TenantServing(b *testing.B) {
	ctx := context.Background()
	web := churnBenchWeb(2028)
	eng, err := NewLocalEngine(web.Graph, EngineOptions{
		Parallelism: 1,
		MaxInFlight: 64,
		TenantQuota: 16,
		Coalesce:    true,
		CoalesceTol: 1e-6,
		TopKIndex:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	ns := eng.DocGraph().NumSites()
	pers := make(Vector, ns)
	for i := range pers {
		pers[i] = (1 + float64(i%7)) / float64(ns*4)
	}
	var mass float64
	for _, x := range pers {
		mass += x
	}
	for i := range pers {
		pers[i] /= mass
	}
	tenants := [...]string{"alpha", "beta", "gamma", "delta"}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			i := i
			err := eng.Update(ctx, GraphDelta{
				ChangedSites: []SiteID{SiteID(i % 80)},
				Apply: func(dg *DocGraph) error {
					churnEdit(dg, i)
					return nil
				},
			})
			if err != nil {
				b.Error(err)
				return
			}
		}
	}()
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(seq.Add(1))
			q := Query{Tenant: tenants[i%len(tenants)], TopK: 10}
			if i%2 == 1 {
				q.SitePersonalization = pers
			}
			if _, err := eng.Rank(ctx, q); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkBaselines times the comparison algorithms on the same web:
// BlockRank (the closest prior work) and HITS (the other baseline the
// paper reviews).
func BenchmarkBaselines(b *testing.B) {
	web := benchWeb()
	b.Run("blockrank", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := blockrank.Compute(web.Graph, blockrank.Config{Tol: 1e-9}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hits", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hits.Run(web.Graph.G, hits.Config{Tol: 1e-9}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
