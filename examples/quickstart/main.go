// Command quickstart: build a tiny two-site web, run the layered ranking and the
// flat PageRank baseline, and print both top lists.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lmmrank"
)

func main() {
	// A miniature web: site "news" hosts three pages, site "blog" two;
	// the blog links the news home twice, news links back once.
	b := lmmrank.NewGraphBuilder()
	b.AddLink("http://news.example/", "http://news.example/world")
	b.AddLink("http://news.example/", "http://news.example/sport")
	b.AddLink("http://news.example/world", "http://news.example/")
	b.AddLink("http://news.example/sport", "http://news.example/")
	b.AddLink("http://blog.example/", "http://blog.example/post-1")
	b.AddLink("http://blog.example/post-1", "http://news.example/")
	b.AddLink("http://blog.example/", "http://news.example/")
	b.AddLink("http://news.example/world", "http://blog.example/")
	dg := b.Build()

	// The paper's Layered Method: SiteRank × independent local DocRanks.
	layered, err := lmmrank.LayeredDocRank(dg, lmmrank.WebConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Layered Method (SiteRank × local DocRank):")
	for _, e := range lmmrank.TopDocs(dg, layered.DocRank, 5) {
		fmt.Printf("  %.4f  %s\n", e.Score, e.URL)
	}

	fmt.Println("\nSiteRank:")
	for s, score := range layered.SiteRank {
		fmt.Printf("  %.4f  %s\n", score, dg.Sites[s].Name)
	}

	// Flat PageRank for comparison.
	flat, err := lmmrank.PageRank(dg, lmmrank.WebConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nflat PageRank baseline:")
	for _, e := range lmmrank.TopDocs(dg, flat, 5) {
		fmt.Printf("  %.4f  %s\n", e.Score, e.URL)
	}
	fmt.Printf("\nagreement: Kendall τ = %.3f\n", lmmrank.KendallTau(layered.DocRank, flat))
}
