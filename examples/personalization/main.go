// Command personalization demonstrates the paper's §3.2 claim that the layered
// method personalizes "in an elegant way" at both layers: biasing the
// site-layer teleport promotes a whole site, biasing one site's
// document-layer teleport promotes pages within it, and the two compose.
//
//	go run ./examples/personalization
package main

import (
	"fmt"
	"log"

	"lmmrank"
)

func main() {
	web := lmmrank.GenerateCampusWeb(lmmrank.CampusWebConfig{
		Seed:                42,
		Sites:               30,
		MeanSitePages:       20,
		DynamicClusterPages: 200,
		DocClusterPages:     200,
	})
	dg := web.Graph

	// Focus: an ordinary page on an ordinary departmental site.
	focusSite := lmmrank.SiteID(12)
	focusDoc := dg.Sites[focusSite].Docs[1]
	fmt.Printf("focus page: %s\n\n", dg.Docs[focusDoc].URL)

	base, err := lmmrank.LayeredDocRank(dg, lmmrank.WebConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Upper layer: teleport 60% of site-layer jumps to the focus site.
	sitePers := make(lmmrank.Vector, dg.NumSites())
	for i := range sitePers {
		sitePers[i] = 0.4 / float64(len(sitePers)-1)
	}
	sitePers[focusSite] = 0.6
	siteBiased, err := lmmrank.LayeredDocRank(dg, lmmrank.WebConfig{
		SitePersonalization: sitePers,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Lower layer: inside the focus site, teleport 60% to the focus page.
	docPers := make(lmmrank.Vector, dg.SiteSize(focusSite))
	for i := range docPers {
		docPers[i] = 0.4 / float64(len(docPers)-1)
	}
	for i, d := range dg.Sites[focusSite].Docs {
		if d == focusDoc {
			docPers[i] = 0.6
		}
	}
	docBiased, err := lmmrank.LayeredDocRank(dg, lmmrank.WebConfig{
		DocPersonalization: map[lmmrank.SiteID]lmmrank.Vector{focusSite: docPers},
	})
	if err != nil {
		log.Fatal(err)
	}

	both, err := lmmrank.LayeredDocRank(dg, lmmrank.WebConfig{
		SitePersonalization: sitePers,
		DocPersonalization:  map[lmmrank.SiteID]lmmrank.Vector{focusSite: docPers},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-26s %-14s %-14s\n", "variant", "focus score", "global rank")
	for _, row := range []struct {
		name string
		res  *lmmrank.WebResult
	}{
		{"uniform", base},
		{"site layer biased", siteBiased},
		{"doc layer biased", docBiased},
		{"both layers biased", both},
	} {
		fmt.Printf("%-26s %-14.6f %-14d\n",
			row.name, row.res.DocRank[focusDoc], rankOf(row.res.DocRank, int(focusDoc)))
	}
	fmt.Println("\nevery variant remains a probability distribution; the Partition")
	fmt.Println("Theorem composition is unchanged, so the distributed pipeline")
	fmt.Println("personalizes with zero extra coordination.")
}

// rankOf returns the 1-based position of doc i under scores.
func rankOf(scores lmmrank.Vector, i int) int {
	rank := 1
	for j, s := range scores {
		if s > scores[i] || (s == scores[i] && j < i) {
			rank++
		}
	}
	return rank
}
