// Distributed runs the paper's peer-to-peer vision end to end on one
// machine: a fleet of worker peers on loopback TCP, each hosting a share
// of the campus web's sites and computing local DocRanks independently; a
// coordinator computes the SiteRank, composes the global ranking by the
// Partition Theorem, and verifies it against the single-process result.
//
//	go run ./examples/distributed [-workers 4] [-decentral-siterank]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"lmmrank"
)

func main() {
	workers := flag.Int("workers", 4, "number of worker peers")
	decentral := flag.Bool("decentral-siterank", false,
		"also compute the SiteRank by distributed power iteration")
	flag.Parse()

	web := lmmrank.GenerateCampusWeb(lmmrank.CampusWebConfig{
		Seed:                7,
		Sites:               60,
		MeanSitePages:       30,
		DynamicClusterPages: 500,
		DocClusterPages:     500,
	})
	fmt.Printf("web: %d sites, %d documents\n", web.Graph.NumSites(), web.Graph.NumDocs())

	cl, err := lmmrank.StartCluster(*workers)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Printf("cluster: %d workers on %v\n\n", len(cl.Workers), cl.Addrs)

	start := time.Now()
	res, err := cl.Coord.Rank(web.Graph, lmmrank.DistConfig{
		DistributedSiteRank: *decentral,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed ranking in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  load sites:   %v\n", res.Stats.LoadDuration.Round(time.Millisecond))
	fmt.Printf("  local ranks:  %v (computed on the peers)\n", res.Stats.LocalRankDuration.Round(time.Millisecond))
	fmt.Printf("  siterank:     %v", res.Stats.SiteRankDuration.Round(time.Millisecond))
	if *decentral {
		fmt.Printf(" (%d distributed power rounds)", res.Stats.SiteRankRounds)
	}
	fmt.Printf("\n  transport:    %d messages, %.2f MB out, %.2f MB in\n\n",
		res.Stats.Messages, float64(res.Stats.BytesSent)/1e6, float64(res.Stats.BytesReceived)/1e6)

	// Verify the Partition Theorem held across the wire.
	local, err := lmmrank.LayeredDocRank(web.Graph, lmmrank.WebConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("‖distributed − single-process‖₁ = %.2e\n\n", res.DocRank.L1Diff(local.DocRank))

	fmt.Println("top 10 documents (distributed Layered Method):")
	for i, e := range lmmrank.TopDocs(web.Graph, res.DocRank, 10) {
		fmt.Printf("%-4d %-10.6f %s\n", i+1, e.Score, e.URL)
	}
}
