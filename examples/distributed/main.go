// Command distributed runs the paper's peer-to-peer vision end to end
// on one machine: a fleet of worker peers on loopback TCP, each hosting
// a share of the campus web's sites (balanced by page count) and
// computing local DocRanks independently; a coordinator computes the
// SiteRank, composes the global ranking by the Partition Theorem, and
// verifies it against the single-process result.
//
// It then demonstrates the production traits of the runtime: a second
// run against the workers' digest caches ships almost no shard bytes,
// and a worker killed between runs is survived by reassigning its
// shards to the remaining peers.
//
//	go run ./examples/distributed [-workers 4] [-decentral-siterank] [-batch-rounds 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"lmmrank"
)

func main() {
	workers := flag.Int("workers", 4, "number of worker peers")
	decentral := flag.Bool("decentral-siterank", false,
		"also compute the SiteRank by distributed power iteration")
	batch := flag.Int("batch-rounds", 0,
		"SiteRank power rounds per exchange (with -decentral-siterank)")
	flag.Parse()

	web := lmmrank.GenerateCampusWeb(lmmrank.CampusWebConfig{
		Seed:                7,
		Sites:               60,
		MeanSitePages:       30,
		DynamicClusterPages: 500,
		DocClusterPages:     500,
	})
	fmt.Printf("web: %d sites, %d documents\n", web.Graph.NumSites(), web.Graph.NumDocs())

	cl, err := lmmrank.StartCluster(*workers)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fmt.Printf("cluster: %d workers on %v\n\n", len(cl.Workers), cl.Addrs)

	// Precompute the serving structure once; repeated runs then only pay
	// for shipping (first run) and ranking.
	rk, err := lmmrank.NewRanker(web.Graph, lmmrank.RankerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := lmmrank.DistConfig{
		DistributedSiteRank: *decentral,
		BatchRounds:         *batch,
		Retry:               lmmrank.DistRetryPolicy{MaxWorkerFailures: 1},
	}

	var res *lmmrank.DistResult
	for run := 1; run <= 2; run++ {
		start := time.Now()
		res, err = cl.Coord.RankPrepared(rk, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: distributed ranking in %v\n", run, time.Since(start).Round(time.Millisecond))
		fmt.Printf("  load sites:   %v (%d cache hits, %d misses, %.2f MB not re-shipped)\n",
			res.Stats.LoadDuration.Round(time.Millisecond),
			res.Stats.CacheHits, res.Stats.CacheMisses, float64(res.Stats.ShardBytesSaved)/1e6)
		fmt.Printf("  local ranks:  %v (computed on the peers)\n", res.Stats.LocalRankDuration.Round(time.Millisecond))
		fmt.Printf("  siterank:     %v", res.Stats.SiteRankDuration.Round(time.Millisecond))
		if *decentral {
			fmt.Printf(" (%d distributed power rounds", res.Stats.SiteRankRounds)
			if res.Stats.BatchMessagesSaved > 0 {
				fmt.Printf(", batching saved %d messages", res.Stats.BatchMessagesSaved)
			}
			fmt.Printf(")")
		}
		fmt.Printf("\n  transport:    %d messages, %.2f MB out, %.2f MB in\n\n",
			res.Stats.Messages, float64(res.Stats.BytesSent)/1e6, float64(res.Stats.BytesReceived)/1e6)
	}

	// Verify the Partition Theorem held across the wire.
	local, err := lmmrank.LayeredDocRank(web.Graph, lmmrank.WebConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("‖distributed − single-process‖₁ = %.2e\n\n", res.DocRank.L1Diff(local.DocRank))

	// Fault tolerance: kill a peer and rank again. Its shards are
	// reassigned to the survivors; the ranking is unchanged.
	if len(cl.Workers) > 1 {
		if err := cl.Kill(len(cl.Workers) - 1); err != nil {
			log.Fatal(err)
		}
		res, err = cl.Coord.RankPrepared(rk, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after killing one worker: %d lost, %d shards reassigned, ‖Δ‖₁ = %.2e\n\n",
			res.Stats.WorkersLost, res.Stats.Reassignments, res.DocRank.L1Diff(local.DocRank))
	}

	fmt.Println("top 10 documents (distributed Layered Method):")
	for i, e := range lmmrank.TopDocs(web.Graph, res.DocRank, 10) {
		fmt.Printf("%-4d %-10.6f %s\n", i+1, e.Score, e.URL)
	}
}
