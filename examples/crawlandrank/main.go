// Command crawlandrank reproduces the paper's full data pipeline (§3.3): crawl a
// campus web from its university home page — including the dynamic pages
// other studies excluded — then rank the captured snapshot. It also shows
// the churn path: a site changes after the crawl and the ranking is
// refreshed incrementally instead of recomputed.
//
//	go run ./examples/crawlandrank
package main

import (
	"fmt"
	"log"

	"lmmrank"
)

func main() {
	// The "live web": a synthetic campus serving as the crawl target.
	origin := lmmrank.GenerateCampusWeb(lmmrank.CampusWebConfig{
		Seed:                2003, // the crawl year
		Sites:               50,
		MeanSitePages:       25,
		DynamicClusterPages: 400,
		DocClusterPages:     400,
	})
	fetcher := lmmrank.NewSnapshotFetcher(origin.Graph)

	// Crawl from the university home, dynamic pages included, with a page
	// budget as the dynamic-loop cutoff the paper describes.
	snapshot, stats, err := lmmrank.Crawl(fetcher, lmmrank.CrawlConfig{
		Seeds:    []string{"http://www.campus.example/"},
		MaxPages: 4000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl: fetched %d pages (%d failed, frontier truncated at %d)\n",
		stats.Fetched, stats.Failed, stats.TruncatedFrontier)
	fmt.Printf("snapshot: %d sites, %d documents, %d links\n\n",
		snapshot.NumSites(), snapshot.NumDocs(), snapshot.G.NumEdges())

	// Rank the snapshot with the Layered Method.
	ranking, err := lmmrank.LayeredDocRank(snapshot, lmmrank.WebConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 10 of the crawled snapshot (Layered Method):")
	for i, e := range lmmrank.TopDocs(snapshot, ranking.DocRank, 10) {
		fmt.Printf("%-4d %-10.6f %s\n", i+1, e.Score, e.URL)
	}

	// Churn: one departmental site adds internal links after the crawl;
	// refresh incrementally.
	var site lmmrank.SiteID = 5
	docs := snapshot.Sites[site].Docs
	if len(docs) >= 2 {
		snapshot.G.AddLink(int(docs[0]), int(docs[1]))
		snapshot.G.AddLink(int(docs[1]), int(docs[0]))
	}
	updated, err := lmmrank.UpdateLayeredDocRank(snapshot, ranking, []lmmrank.SiteID{site}, lmmrank.WebConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincremental refresh after site %q changed: SiteRank re-solved in %d iterations, %d of %d local ranks reused\n",
		snapshot.Sites[site].Name, updated.SiteIterations,
		snapshot.NumSites()-1, snapshot.NumSites())
	fmt.Printf("‖updated − previous‖₁ = %.2e (local perturbation, local effect)\n",
		updated.DocRank.L1Diff(ranking.DocRank))
}
