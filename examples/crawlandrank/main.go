// Command crawlandrank reproduces the paper's full data pipeline (§3.3): crawl a
// campus web from its university home page — including the dynamic pages
// other studies excluded — then rank the captured snapshot. It also shows
// the churn path twice over: a site changes after the crawl and the
// served ranking is refreshed through Engine.Update (only the changed
// site's structure rebuilds, queries warm-start from the previous
// solution), with the functional UpdateLayeredDocRank shown alongside.
//
//	go run ./examples/crawlandrank
package main

import (
	"context"
	"fmt"
	"log"

	"lmmrank"
)

func main() {
	// The "live web": a synthetic campus serving as the crawl target.
	origin := lmmrank.GenerateCampusWeb(lmmrank.CampusWebConfig{
		Seed:                2003, // the crawl year
		Sites:               50,
		MeanSitePages:       25,
		DynamicClusterPages: 400,
		DocClusterPages:     400,
	})
	fetcher := lmmrank.NewSnapshotFetcher(origin.Graph)

	// Crawl from the university home, dynamic pages included, with a page
	// budget as the dynamic-loop cutoff the paper describes.
	snapshot, stats, err := lmmrank.Crawl(fetcher, lmmrank.CrawlConfig{
		Seeds:    []string{"http://www.campus.example/"},
		MaxPages: 4000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawl: fetched %d pages (%d failed, frontier truncated at %d)\n",
		stats.Fetched, stats.Failed, stats.TruncatedFrontier)
	fmt.Printf("snapshot: %d sites, %d documents, %d links\n\n",
		snapshot.NumSites(), snapshot.NumDocs(), snapshot.G.NumEdges())

	// Serve the snapshot with the Layered Method through the Engine API —
	// the form that stays cheap when the graph keeps changing.
	ctx := context.Background()
	eng, err := lmmrank.NewLocalEngine(snapshot, lmmrank.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ranking, err := eng.Rank(ctx, lmmrank.Query{TopK: 10, WantLocalRanks: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 10 of the crawled snapshot (Layered Method):")
	for i, e := range ranking.Top {
		fmt.Printf("%-4d %-10.6f %s\n", i+1, e.Score, e.URL)
	}

	// Churn: one departmental site adds internal links after the crawl.
	// Engine.Update delivers the mutation race-free — Apply runs against
	// a copy-on-write clone published atomically, so in-flight queries
	// finish undisturbed — rebuilds only that site's structure and
	// warm-starts every later query from the previous solution.
	var site lmmrank.SiteID = 5
	err = eng.Update(ctx, lmmrank.GraphDelta{
		ChangedSites: []lmmrank.SiteID{site},
		Apply: func(dg *lmmrank.DocGraph) error {
			docs := dg.Sites[site].Docs
			if len(docs) >= 2 {
				dg.G.AddLink(int(docs[0]), int(docs[1]))
				dg.G.AddLink(int(docs[1]), int(docs[0]))
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	refreshed, err := eng.Rank(ctx, lmmrank.Query{})
	if err != nil {
		log.Fatal(err)
	}
	warmIters := refreshed.SiteIterations
	for _, it := range refreshed.LocalIterations {
		warmIters += it
	}
	fmt.Printf("\nEngine.Update after site %q changed: warm query converged in %d power iterations total\n",
		snapshot.Sites[site].Name, warmIters)
	fmt.Printf("‖updated − previous‖₁ = %.2e (local perturbation, local effect)\n",
		refreshed.DocRank.L1Diff(ranking.DocRank))

	// The functional path gives the same answer without holding an
	// engine: recompute only the changed site, reuse the rest.
	prev := &lmmrank.WebResult{
		DocRank: ranking.DocRank, SiteRank: ranking.SiteRank,
		LocalRanks: ranking.LocalRanks, SiteIterations: ranking.SiteIterations,
	}
	// eng.DocGraph() is the graph the engine serves now — the Apply-path
	// Update evolved it past the original crawl snapshot.
	updated, err := lmmrank.UpdateLayeredDocRank(eng.DocGraph(), prev, []lmmrank.SiteID{site}, lmmrank.WebConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UpdateLayeredDocRank agrees with the served refresh to %.2e (%d of %d local ranks reused verbatim)\n",
		updated.DocRank.L1Diff(refreshed.DocRank),
		snapshot.NumSites()-1, snapshot.NumSites())
}
