// Command campusweb regenerates the paper's empirical comparison (§3.3, Figures 3
// and 4) on a synthetic campus web: flat PageRank's top list is dominated
// by link-mass agglomerates (dynamic-script pages, javadoc mirrors) while
// the LMM-based Layered Method surfaces the genuinely authoritative pages.
//
//	go run ./examples/campusweb [-seed 2005]
package main

import (
	"flag"
	"fmt"
	"log"

	"lmmrank"
)

func main() {
	seed := flag.Int64("seed", 2005, "generator seed")
	flag.Parse()

	cfg := lmmrank.CampusWebConfig{Seed: *seed} // zero fields = paper-scale defaults
	web := lmmrank.GenerateCampusWeb(cfg)
	fmt.Printf("campus web: %d sites, %d documents, %d links\n\n",
		web.Graph.NumSites(), web.Graph.NumDocs(), web.Graph.G.NumEdges())

	flat, err := lmmrank.PageRank(web.Graph, lmmrank.WebConfig{})
	if err != nil {
		log.Fatal(err)
	}
	layered, err := lmmrank.LayeredDocRank(web.Graph, lmmrank.WebConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("── Figure 3: top 15 by flat PageRank ──")
	printTable(web, flat)
	fmt.Println("\n── Figure 4: top 15 by LMM-based Layered Method ──")
	printTable(web, layered.DocRank)

	flags := web.SpamFlags()
	fmt.Printf("\nagglomerate contamination@15: PageRank %.2f, LMM %.2f\n",
		contamination(flat, flags, 15), contamination(layered.DocRank, flags, 15))
	fmt.Printf("overall agreement: Kendall τ = %.3f\n",
		lmmrank.KendallTau(flat, layered.DocRank))
}

func printTable(web *lmmrank.CampusWeb, scores lmmrank.Vector) {
	fmt.Printf("%-4s %-10s %-22s %s\n", "#", "score", "class", "URL")
	for i, e := range lmmrank.TopDocs(web.Graph, scores, 15) {
		fmt.Printf("%-4d %-10.6f %-22s %s\n", i+1, e.Score, web.Class[e.Doc], e.URL)
	}
}

func contamination(scores lmmrank.Vector, flags []bool, k int) float64 {
	top := topIndices(scores, k)
	var bad int
	for _, i := range top {
		if flags[i] {
			bad++
		}
	}
	return float64(bad) / float64(len(top))
}

func topIndices(scores lmmrank.Vector, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k is tiny.
	for i := 0; i < k && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if scores[idx[j]] > scores[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
