// Command serving demonstrates the Engine API — the one serving surface
// over the local and distributed backends: a LocalEngine answering
// mixed queries (uniform, site-personalized, top-k, three-layer) from
// many goroutines at once, a DistEngine answering the same Query type
// from a worker fleet, and a context deadline cutting a query short.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"lmmrank"
)

func main() {
	web := lmmrank.GenerateCampusWeb(lmmrank.CampusWebConfig{
		Seed: 7, Sites: 40, MeanSitePages: 20,
		DynamicClusterPages: 200, DocClusterPages: 200,
	})
	dg := web.Graph
	fmt.Printf("campus web: %d sites, %d documents\n\n", dg.NumSites(), dg.NumDocs())

	// One engine, built once: the SiteGraph, every local subgraph and
	// all transition matrices are precomputed here. Queries only read.
	eng, err := lmmrank.NewLocalEngine(dg, lmmrank.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// A personalized query per "user", served concurrently. Results are
	// caller-owned — each goroutine keeps its own without cloning.
	var wg sync.WaitGroup
	answers := make([]*lmmrank.Result, 4)
	for u := range answers {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			pers := make(lmmrank.Vector, dg.NumSites())
			for i := range pers {
				pers[i] = 1
			}
			pers[u] = 20 // each user favors a different site
			pers.Normalize()
			res, err := eng.Rank(ctx, lmmrank.Query{SitePersonalization: pers, TopK: 3})
			if err != nil {
				log.Fatal(err)
			}
			answers[u] = res
		}(u)
	}
	wg.Wait()
	for u, res := range answers {
		fmt.Printf("user %d top hit: %s (%.5f)\n", u, res.Top[0].URL, res.Top[0].Score)
	}

	// The same engine serves the three-layer model per query.
	res3, err := eng.Rank(ctx, lmmrank.Query{ThreeLayer: true, TopK: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthree-layer: %d domains, top hit %s\n", len(res3.Domains), res3.Top[0].URL)

	// A deadline bounds a query end to end; an absurdly tight one shows
	// the cooperative abort mid-power-iteration.
	tight, cancel := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel()
	if _, err := eng.Rank(tight, lmmrank.Query{}); err != nil {
		fmt.Printf("tight deadline: %v\n", err)
	}

	// The distributed backend serves the very same Query type: local
	// DocRanks run on the fleet, shards are digest-cached and (here)
	// flate-compressed, and the result carries transport stats.
	cl, err := lmmrank.StartCluster(3)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	dist, err := lmmrank.NewDistEngine(cl, dg, lmmrank.DistConfig{Compress: true})
	if err != nil {
		log.Fatal(err)
	}
	dres, err := dist.Rank(ctx, lmmrank.Query{TopK: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed top hit: %s (%.5f)\n", dres.Top[0].URL, dres.Top[0].Score)
	fmt.Printf("fleet: %d messages, shard payload %.1f KB on the wire (%.1f KB before compression)\n",
		dres.Dist.Messages,
		float64(dres.Dist.ShardBytesCompressed)/1e3,
		float64(dres.Dist.ShardBytesRaw)/1e3)

	// Warm runs reuse the workers' caches and the coordinator's digest
	// memo: near-zero shard bytes, zero digest hashing.
	warm, err := dist.Rank(ctx, lmmrank.Query{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm run: %d cache hits, %d digest bytes hashed\n",
		warm.Dist.CacheHits, warm.Dist.DigestBytesHashed)
}
