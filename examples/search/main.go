// Command search demonstrates the paper's future work (§4): combining query-based
// ranking (a TF-IDF vector space model) with link-based ranking (the
// layered DocRank). The same query is answered with pure text scores and
// with fused scores, showing how link evidence reorders equally-relevant
// pages — using the spam-resistant layered ranking rather than flat
// PageRank as the link component.
//
//	go run ./examples/search [-query topic007] [-lambda 0.5]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"lmmrank"
)

func main() {
	query := flag.String("query", "topic007 department", "space-separated query terms")
	lambda := flag.Float64("lambda", 0.5, "fusion weight: 1 = pure text, 0 = pure link")
	flag.Parse()

	web := lmmrank.GenerateCampusWeb(lmmrank.CampusWebConfig{
		Seed:                9,
		Sites:               40,
		MeanSitePages:       25,
		DynamicClusterPages: 300,
		DocClusterPages:     300,
	})
	index := lmmrank.SyntheticCorpus(web, 9)
	fmt.Printf("corpus: %d documents, %d terms\n", index.NumDocs(), index.NumTerms())

	ranked, err := lmmrank.LayeredDocRank(web.Graph, lmmrank.WebConfig{})
	if err != nil {
		log.Fatal(err)
	}
	terms := strings.Fields(*query)

	pure, err := lmmrank.NewSearchEngine(index, ranked.DocRank, 1)
	if err != nil {
		log.Fatal(err)
	}
	fused, err := lmmrank.NewSearchEngine(index, ranked.DocRank, *lambda)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nquery: %q — pure text (λ=1):\n", *query)
	printResults(web, must(pure.Search(terms, 8)))
	fmt.Printf("\nquery: %q — fused with layered DocRank (λ=%.2f):\n", *query, *lambda)
	printResults(web, must(fused.Search(terms, 8)))
}

func printResults(web *lmmrank.CampusWeb, res []lmmrank.SearchResult) {
	fmt.Printf("%-4s %-9s %-9s %-9s %s\n", "#", "combined", "text", "link", "URL")
	for i, r := range res {
		fmt.Printf("%-4d %-9.4f %-9.4f %-9.4f %s\n",
			i+1, r.Combined, r.Query, r.Link, web.Graph.Docs[r.Doc].URL)
	}
}

func must(res []lmmrank.SearchResult, err error) []lmmrank.SearchResult {
	if err != nil {
		log.Fatal(err)
	}
	return res
}
