// Command multicampus demonstrates the multi-layer extension (§2.2) at web scale:
// three federated campuses, each its own domain, ranked with the
// three-layer domain → site → page model. The recursive Partition
// argument composes DomainRank × site entry × local DocRank; with a single
// domain the result reduces exactly to the two-layer Layered Method.
//
//	go run ./examples/multicampus
package main

import (
	"fmt"
	"log"
	"sort"

	"lmmrank"
)

func main() {
	web := lmmrank.GenerateCampusWeb(lmmrank.CampusWebConfig{
		Seed:                11,
		Sites:               25,
		MeanSitePages:       15,
		Campuses:            3,
		DynamicClusterPages: 200,
		DocClusterPages:     200,
	})
	fmt.Printf("federated web: %d sites, %d documents across 3 campus domains\n\n",
		web.Graph.NumSites(), web.Graph.NumDocs())

	three, err := lmmrank.LayeredDocRank3(web.Graph, nil, lmmrank.WebConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("domain layer (top of the hierarchy):")
	type dom struct {
		name  string
		score float64
	}
	doms := make([]dom, len(three.Domains))
	for i, name := range three.Domains {
		doms[i] = dom{name, three.DomainRank[i]}
	}
	sort.Slice(doms, func(a, b int) bool { return doms[a].score > doms[b].score })
	for _, d := range doms {
		fmt.Printf("  %.4f  %s\n", d.score, d.name)
	}

	fmt.Println("\ntop 10 documents (three-layer composition):")
	for i, e := range lmmrank.TopDocs(web.Graph, three.DocRank, 10) {
		fmt.Printf("%-4d %-10.6f %s\n", i+1, e.Score, e.URL)
	}

	// Compare against the two-layer method on the same web.
	two, err := lmmrank.LayeredDocRank(web.Graph, lmmrank.WebConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nτ(two-layer, three-layer) = %.3f — broadly consistent, but the\n",
		lmmrank.KendallTau(two.DocRank, three.DocRank))
	fmt.Println("domain layer reweighs sites by their campus's federation standing.")
}
