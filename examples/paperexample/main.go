// Command paperexample reproduces the worked example of the paper's §2.3: the
// 12-state Layered Markov Model, all four ranking approaches, and the
// Partition Theorem equality (Corollary 1) — the numbers of Figure 2.
//
//	go run ./examples/paperexample
package main

import (
	"fmt"
	"log"

	"lmmrank"
)

func main() {
	model := lmmrank.PaperExample()
	all, err := lmmrank.ComputeAll(model, lmmrank.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("local PageRank vectors π^I_G (§2.3.2):")
	for i, v := range all.Local {
		fmt.Printf("  phase %d: %v\n", i+1, v)
	}
	fmt.Printf("\nphase layer: πY = %v, π̃Y = %v\n\n", all.PiY, all.PiYTilde)

	fmt.Println("Figure 2 — Approach 1 (πW, maximal irreducibility on W):")
	fmt.Print(all.A1)
	fmt.Println("\nFigure 2 — Approach 2 (π̃W, direct power method on W):")
	fmt.Print(all.A2)

	fmt.Println("\nApproach 4, the Layered Method (π̃Y ⊗ π^I_G) — computed without W:")
	fmt.Print(all.A4)

	gap, err := lmmrank.PartitionGap(model, lmmrank.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPartition Theorem: ‖Approach2 − Approach4‖₁ = %.2e\n", gap)

	top := all.A4.Order()[:3]
	fmt.Printf("top three global states: %v %v %v (paper: (2,3), (3,1), (2,2))\n",
		top[0], top[1], top[2])
}
