package lmmrank

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingDomainOf returns an identity DomainOf whose *first* call
// closes started and parks on release — a deterministic way to hold a
// ThreeLayer query mid-flight, since DomainOf runs inside the ranking
// phase after the query has pinned its snapshot.
func blockingDomainOf(started, release chan struct{}) func(string) string {
	var once sync.Once
	return func(name string) string {
		once.Do(func() {
			close(started)
			<-release
		})
		return name
	}
}

// identityDomainOf matches blockingDomainOf's grouping without the
// blocking, for reference answers.
func identityDomainOf(name string) string { return name }

// TestRankStragglerAcrossUpdate is the acceptance pin of snapshot
// serving: a Rank held mid-flight does not block Update, and after the
// swap it completes on the snapshot it started on — no error, no
// ErrGraphMutated, bitwise-equal to the same query run before the
// Update — while new queries already see the new graph. Runs under
// -race via make race.
func TestRankStragglerAcrossUpdate(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{Parallelism: 1})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	q := Query{ThreeLayer: true, Tol: 1e-11, DomainOf: identityDomainOf}
	ref, err := eng.Rank(ctx, q)
	if err != nil {
		t.Fatalf("reference Rank: %v", err)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	straggler := q
	straggler.DomainOf = blockingDomainOf(started, release)
	type answer struct {
		res *Result
		err error
	}
	got := make(chan answer, 1)
	go func() {
		res, err := eng.Rank(ctx, straggler)
		got <- answer{res, err}
	}()
	<-started // the straggler is mid-flight, holding its snapshot

	// Update must complete while the straggler is parked — under the old
	// drain-and-swap engine this deadlocked on the write lock.
	err = eng.Update(ctx, GraphDelta{
		ChangedSites: []SiteID{2},
		Apply: func(dg *DocGraph) error {
			editSite(t, dg, 2)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Update with a straggler in flight: %v", err)
	}

	// New queries serve the new graph before the straggler finishes.
	post, err := eng.Rank(ctx, q)
	if err != nil {
		t.Fatalf("post-update Rank: %v", err)
	}
	if d := post.DocRank.L1Diff(ref.DocRank); d == 0 {
		t.Error("post-update ranking identical to pre-update — the edit was lost")
	}

	close(release)
	a := <-got
	if a.err != nil {
		t.Fatalf("straggler Rank: %v", a.err)
	}
	if !reflect.DeepEqual(a.res, ref) {
		t.Error("straggler result differs from its snapshot's pre-update answer")
	}
}

// TestFlightGroupCoalesces pins single-flight semantics directly: with
// a leader parked inside fn, late arrivals wait on its flight (their
// own fn never runs) and every caller gets an equal but unaliased copy.
func TestFlightGroupCoalesces(t *testing.T) {
	fg := newFlightGroup()
	ctx := context.Background()
	started := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32
	want := Vector{0.25, 0.75}

	type answer struct {
		res *Result
		err error
	}
	leaderGot := make(chan answer, 1)
	go func() {
		res, err := fg.do(ctx, "k", func() (*Result, error) {
			calls.Add(1)
			close(started)
			<-release
			return &Result{DocRank: want.Clone()}, nil
		})
		leaderGot <- answer{res, err}
	}()
	<-started // the flight is registered: do registers before running fn

	const waiters = 4
	waiterGot := make(chan answer, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			res, err := fg.do(ctx, "k", func() (*Result, error) {
				calls.Add(1)
				return nil, errors.New("waiter fn ran")
			})
			waiterGot <- answer{res, err}
		}()
	}
	fg.mu.Lock()
	f := fg.m["k"]
	fg.mu.Unlock()
	if f == nil {
		t.Fatal("no open flight for the key")
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.waiters.Load() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters joined the flight", f.waiters.Load(), waiters)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)

	results := make([]*Result, 0, waiters+1)
	for i := 0; i < waiters+1; i++ {
		var a answer
		select {
		case a = <-leaderGot:
		case a = <-waiterGot:
		}
		if a.err != nil {
			t.Fatalf("coalesced call: %v", a.err)
		}
		results = append(results, a.res)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	for i, r := range results {
		if !reflect.DeepEqual(r.DocRank, want) {
			t.Errorf("result %d = %v, want %v", i, r.DocRank, want)
		}
		for j := 0; j < i; j++ {
			if &r.DocRank[0] == &results[j].DocRank[0] {
				t.Errorf("results %d and %d alias the same vector", i, j)
			}
		}
	}
}

// TestFlightGroupLeaderCancelRetry: a leader failing with *its* context
// abort must not fail the coalesced callers — a live waiter retries as
// the fresh leader and computes its own answer.
func TestFlightGroupLeaderCancelRetry(t *testing.T) {
	fg := newFlightGroup()
	started := make(chan struct{})
	release := make(chan struct{})
	leaderGot := make(chan error, 1)
	go func() {
		_, err := fg.do(context.Background(), "k", func() (*Result, error) {
			close(started)
			<-release
			return nil, fmt.Errorf("solver aborted: %w", context.Canceled)
		})
		leaderGot <- err
	}()
	<-started
	fg.mu.Lock()
	f := fg.m["k"]
	fg.mu.Unlock()

	var waiterFnRan atomic.Bool
	want := Vector{1}
	type answer struct {
		res *Result
		err error
	}
	waiterGot := make(chan answer, 1)
	go func() {
		res, err := fg.do(context.Background(), "k", func() (*Result, error) {
			waiterFnRan.Store(true)
			return &Result{DocRank: want.Clone()}, nil
		})
		waiterGot <- answer{res, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for f.waiters.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the flight")
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)

	if err := <-leaderGot; !errors.Is(err, context.Canceled) {
		t.Errorf("leader err = %v, want its own context.Canceled", err)
	}
	a := <-waiterGot
	if a.err != nil {
		t.Fatalf("retrying waiter: %v", a.err)
	}
	if !waiterFnRan.Load() {
		t.Error("waiter never re-ran as leader")
	}
	if !reflect.DeepEqual(a.res.DocRank, want) {
		t.Errorf("waiter result = %v, want %v", a.res.DocRank, want)
	}
}

// TestFlightGroupWaiterCtx: a waiter whose own context aborts stops
// waiting immediately with ctx.Err(), leaving the leader undisturbed.
func TestFlightGroupWaiterCtx(t *testing.T) {
	fg := newFlightGroup()
	started := make(chan struct{})
	release := make(chan struct{})
	leaderGot := make(chan error, 1)
	go func() {
		_, err := fg.do(context.Background(), "k", func() (*Result, error) {
			close(started)
			<-release
			return &Result{DocRank: Vector{1}}, nil
		})
		leaderGot <- err
	}()
	<-started

	wctx, cancel := context.WithCancel(context.Background())
	waiterGot := make(chan error, 1)
	go func() {
		_, err := fg.do(wctx, "k", func() (*Result, error) {
			return nil, errors.New("waiter fn ran")
		})
		waiterGot <- err
	}()
	fg.mu.Lock()
	f := fg.m["k"]
	fg.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for f.waiters.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined the flight")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-waiterGot; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-leaderGot; err != nil {
		t.Errorf("leader err = %v after a waiter bailed", err)
	}
}

// TestEngineCoalesceConsultsFlights proves Rank actually routes through
// the snapshot's flight group: a result planted under the query's
// fingerprint is what Rank returns — as a private copy.
func TestEngineCoalesceConsultsFlights(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{Coalesce: true})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	q := Query{Tol: 1e-6}
	key, ok := q.fingerprint(0)
	if !ok {
		t.Fatal("plain query not coalesceable")
	}
	sentinel := &Result{DocRank: Vector{0.25, 0.75}, SiteIterations: 41}
	f := &flight{done: make(chan struct{}), res: sentinel}
	close(f.done)
	fg := eng.snap.Load().flights
	fg.mu.Lock()
	fg.m[key] = f
	fg.mu.Unlock()
	defer func() {
		fg.mu.Lock()
		delete(fg.m, key)
		fg.mu.Unlock()
	}()

	res, err := eng.Rank(ctx, q)
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if !reflect.DeepEqual(res, sentinel) {
		t.Errorf("Rank bypassed the planted flight: got %+v", res)
	}
	if &res.DocRank[0] == &sentinel.DocRank[0] {
		t.Error("Rank returned the flight's result without copying")
	}

	// A query with a custom DomainOf must NOT consult the group (its
	// fingerprint is undefined) — it computes for real.
	if _, ok := (Query{DomainOf: identityDomainOf}).fingerprint(0); ok {
		t.Error("DomainOf query reported a fingerprint")
	}
}

// TestEngineAdmissionCap covers both admission modes with a query
// deterministically parked inside the engine.
func TestEngineAdmissionCap(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()

	t.Run("reject", func(t *testing.T) {
		eng, err := NewLocalEngine(web.Graph, EngineOptions{MaxInFlight: 1, RejectOverload: true})
		if err != nil {
			t.Fatalf("NewLocalEngine: %v", err)
		}
		started := make(chan struct{})
		release := make(chan struct{})
		holderGot := make(chan error, 1)
		go func() {
			_, err := eng.Rank(ctx, Query{ThreeLayer: true, DomainOf: blockingDomainOf(started, release)})
			holderGot <- err
		}()
		<-started // the only slot is held
		if _, err := eng.Rank(ctx, Query{}); !errors.Is(err, ErrOverloaded) {
			t.Errorf("over-cap Rank err = %v, want ErrOverloaded", err)
		}
		close(release)
		if err := <-holderGot; err != nil {
			t.Fatalf("holder Rank: %v", err)
		}
		if _, err := eng.Rank(ctx, Query{}); err != nil {
			t.Errorf("Rank after the slot freed: %v", err)
		}
	})

	t.Run("queue", func(t *testing.T) {
		eng, err := NewLocalEngine(web.Graph, EngineOptions{MaxInFlight: 1})
		if err != nil {
			t.Fatalf("NewLocalEngine: %v", err)
		}
		started := make(chan struct{})
		release := make(chan struct{})
		holderGot := make(chan error, 1)
		go func() {
			_, err := eng.Rank(ctx, Query{ThreeLayer: true, DomainOf: blockingDomainOf(started, release)})
			holderGot <- err
		}()
		<-started
		// A queued caller honors its context while waiting for a slot.
		qctx, cancel := context.WithCancel(ctx)
		queuedGot := make(chan error, 1)
		go func() {
			_, err := eng.Rank(qctx, Query{})
			queuedGot <- err
		}()
		cancel()
		if err := <-queuedGot; !errors.Is(err, context.Canceled) {
			t.Errorf("queued Rank err = %v, want context.Canceled", err)
		}
		close(release)
		if err := <-holderGot; err != nil {
			t.Fatalf("holder Rank: %v", err)
		}
		if _, err := eng.Rank(ctx, Query{}); err != nil {
			t.Errorf("Rank after the slot freed: %v", err)
		}
	})
}

// TestNormalizeCtxErr pins the masking fix: a query's own failure
// survives an expired context; only genuine context aborts are mapped
// to the caller's ctx.Err().
func TestNormalizeCtxErr(t *testing.T) {
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	live := context.Background()

	if got := normalizeCtxErr(expired, ErrGraphMutated); !errors.Is(got, ErrGraphMutated) {
		t.Errorf("real fault under expired ctx = %v, want ErrGraphMutated", got)
	}
	wrapped := fmt.Errorf("power run: %w", context.Canceled)
	if got := normalizeCtxErr(expired, wrapped); got != context.Canceled {
		t.Errorf("wrapped abort under expired ctx = %v, want the ctx's own Canceled", got)
	}
	if got := normalizeCtxErr(live, wrapped); got != wrapped {
		t.Errorf("wrapped abort under live ctx = %v, want it passed through", got)
	}
	if got := normalizeCtxErr(live, nil); got != nil {
		t.Errorf("nil err = %v, want nil", got)
	}
}

// TestThreeLayerWarmMatchesCold pins the seed-scoping fix: after an
// Update, a three-layer query must agree with a cold engine to < 1e-9.
// The identity DomainOf makes the domain count equal the site count —
// exactly the shape where a leaked two-layer site seed would slip past
// the solver's shape check and start the domain layer from the wrong
// distribution.
func TestThreeLayerWarmMatchesCold(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	q := Query{ThreeLayer: true, Tol: 1e-11, DomainOf: identityDomainOf}
	if _, err := eng.Rank(ctx, q); err != nil {
		t.Fatalf("pre-churn Rank: %v", err)
	}
	err = eng.Update(ctx, GraphDelta{
		ChangedSites: []SiteID{4},
		Apply: func(dg *DocGraph) error {
			editSite(t, dg, 4)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	warm, err := eng.Rank(ctx, q)
	if err != nil {
		t.Fatalf("warm three-layer Rank: %v", err)
	}
	coldEng, err := NewLocalEngine(eng.DocGraph(), EngineOptions{})
	if err != nil {
		t.Fatalf("cold NewLocalEngine: %v", err)
	}
	cold, err := coldEng.Rank(ctx, q)
	if err != nil {
		t.Fatalf("cold three-layer Rank: %v", err)
	}
	if d := warm.DocRank.L1Diff(cold.DocRank); d >= 1e-9 {
		t.Errorf("‖warm − cold‖₁ three-layer DocRank = %g, want < 1e-9", d)
	}
	if d := warm.DomainRank.L1Diff(cold.DomainRank); d >= 1e-9 {
		t.Errorf("‖warm − cold‖₁ DomainRank = %g, want < 1e-9", d)
	}
}

// TestDistEngineFailedApplyNoReship is the distributed regression pin
// for the dirty-before-Apply bug: an Update whose Apply mutates the
// working clone and then fails must not poison the engine — a follow-up
// no-op Update and query re-ship nothing and serve the original
// ranking.
func TestDistEngineFailedApplyNoReship(t *testing.T) {
	web := churnTestWeb()
	dg := web.Graph
	ns := dg.NumSites()
	ctx := context.Background()

	cl, err := StartCluster(2)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer cl.Close()
	eng, err := NewDistEngine(cl, dg, DistConfig{})
	if err != nil {
		t.Fatalf("NewDistEngine: %v", err)
	}
	cold, err := eng.Rank(ctx, Query{})
	if err != nil {
		t.Fatalf("cold Rank: %v", err)
	}

	boom := errors.New("boom")
	err = eng.Update(ctx, GraphDelta{
		ChangedSites: []SiteID{2},
		Apply: func(dg *DocGraph) error {
			editSite(t, dg, 2) // mutates the clone, then fails
			return boom
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("failing Update: err = %v, want boom", err)
	}

	// A clean empty Update now rebuilds nothing; the next query reuses
	// every shard. Under the old merge-before-Apply engine, site 2 was
	// already marked dirty (and the serving graph mutated), so this
	// shipped the half-applied edit.
	if err := eng.Update(ctx, GraphDelta{}); err != nil {
		t.Fatalf("empty Update: %v", err)
	}
	warm, err := eng.Rank(ctx, Query{})
	if err != nil {
		t.Fatalf("post-update Rank: %v", err)
	}
	if warm.Dist.ShardsReshipped != 0 || warm.Dist.ShardsReused != ns {
		t.Errorf("reshipped %d / reused %d shards, want 0 / %d",
			warm.Dist.ShardsReshipped, warm.Dist.ShardsReused, ns)
	}
	if d := warm.DocRank.L1Diff(cold.DocRank); d >= 1e-9 {
		t.Errorf("‖post-failed-update − cold‖₁ = %g, want < 1e-9 (the failed edit leaked)", d)
	}
}
