package lmmrank

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/lmm"
	"lmmrank/internal/partition"
)

// Query is the unified serving request every Engine answers: one struct
// covers uniform rankings, site- and document-layer personalization
// (§3.2's two-layer personalization), top-k tables and the three-layer
// domain → site → page model. The zero value asks for the standard
// uniform two-layer ranking with default damping, tolerance and
// iteration budget.
type Query struct {
	// Tenant names the caller for admission accounting: with
	// EngineOptions.TenantQuota (or the DistConfig equivalent) set, each
	// distinct Tenant gets its own concurrency quota beneath the
	// engine-wide cap, so one flooding tenant exhausts only its own
	// slots. The empty string is itself a tenant (the "anonymous" one).
	// Tenant never affects the ranking answer and is excluded from the
	// coalescing fingerprint — queries from different tenants may share
	// one computation; each still receives its own copy.
	Tenant string
	// Damping is the PageRank damping factor / gatekeeper α. Zero is a
	// sentinel selecting the default 0.85 — an explicit damping of
	// exactly 0 cannot be requested, tiny positive values are honored.
	Damping float64
	// Tol and MaxIter bound every power-method run (0 = package
	// defaults).
	Tol     float64
	MaxIter int
	// SitePersonalization biases the site layer: the teleport
	// distribution over sites (length NumSites; nil = uniform).
	// Incompatible with ThreeLayer, which replaces the site layer.
	SitePersonalization Vector
	// DocPersonalization biases individual sites' document layers:
	// per-site teleport vectors in local-index order; missing sites use
	// uniform. Served by LocalEngine only — DistEngine rejects it with
	// ErrUnsupportedQuery (per-site teleports are not part of the wire
	// protocol).
	DocPersonalization map[SiteID]Vector
	// ThreeLayer selects the three-layer (domain → site → page) model;
	// DomainOf groups sites into domains (nil = the registrable-domain
	// default). The Result gains Domains, DomainRank, DomainOfSite and
	// SiteEntry, and its SiteRank holds the per-site composition
	// weights DomainRank·SiteEntry. A query with a non-nil DomainOf is
	// never coalesced (function identity is not fingerprintable).
	ThreeLayer bool
	DomainOf   func(siteName string) string
	// TopK, when positive, fills Result.Top with the k best documents
	// and their URLs in descending score order.
	TopK int
	// WantLocalRanks asks for Result.LocalRanks (each site's local
	// DocRank). Serving clients rarely need them; leaving this false
	// keeps the per-query copying to the global vectors.
	WantLocalRanks bool
}

// Result is a ranking answer. Every slice is freshly allocated and
// caller-owned: mutate it, retain it across queries, hand it to another
// goroutine — nothing aliases engine internals. (Scratch aliasing is an
// internal/ concern; it stops at this boundary.)
type Result struct {
	// DocRank is the global ranking per DocID, a probability
	// distribution.
	DocRank Vector
	// SiteRank is the site-layer distribution πS per SiteID — or, for a
	// ThreeLayer query, the per-site composition weights
	// DomainRank(dom(s))·SiteEntry(s).
	SiteRank Vector
	// Domains, DomainRank, DomainOfSite and SiteEntry carry the upper
	// layers of a ThreeLayer query (nil otherwise): the distinct domain
	// names in first-seen order, the top-layer distribution per domain
	// index, each site's domain index, and each site's entry
	// probability within its domain.
	Domains      []string
	DomainRank   Vector
	DomainOfSite []int
	SiteEntry    Vector
	// LocalRanks holds each site's local DocRank in local-index order;
	// filled only when Query.WantLocalRanks was set.
	LocalRanks []Vector
	// Top is the TopK table (nil when Query.TopK <= 0).
	Top []DocScore
	// SiteIterations and LocalIterations record power-method work:
	// site-layer iterations (or distributed rounds) and per-site local
	// iterations.
	SiteIterations  int
	LocalIterations []int
	// Dist carries the transport/cache statistics of a distributed
	// query (nil for LocalEngine results).
	Dist *DistStats
}

// GraphDelta describes one batch of graph churn for Engine.Update: which
// sites' content changed, and (optionally) the mutation itself.
//
// ChangedSites must list every site whose pages or links changed —
// including links *from* its documents to other sites' documents; sites
// appended beyond the previous roster are implicitly changed. The
// layered decomposition makes this list the whole cost model: only the
// listed sites' subgraphs, transition matrices and solvers are rebuilt
// (and, distributedly, re-shipped), everything else is reused.
//
// Apply, when non-nil, receives a copy-on-write working clone of the
// served graph — not the serving snapshot itself. The engine applies
// the mutation to the clone, rebuilds off to the side and publishes the
// result atomically, so in-flight queries keep reading the old,
// untouched graph; if Apply (or the rebuild) fails, the clone is
// discarded and the engine is exactly as before — a failed Update is a
// no-op. Mutate only the *dg passed in; a captured outer pointer still
// names the old serving graph. After a successful Apply-path Update,
// re-fetch the serving graph with DocGraph().
//
// With a nil Apply the caller has already mutated the serving graph in
// place; that is only safe when no query was in flight during the
// mutation (queries read the graph while serving), and the engine keeps
// serving that same (now rebuilt-in-place) graph.
type GraphDelta struct {
	ChangedSites []SiteID
	Apply        func(dg *DocGraph) error
}

// Engine is the serving surface of the layered ranking model: one
// interface over the in-process and distributed backends. Rank answers
// one Query; implementations are safe for concurrent use, results are
// caller-owned, and a cancelled or expired context aborts the query
// mid-computation — between power iterations locally, between wire
// exchanges (or by interrupting a blocked one) distributedly —
// returning ctx.Err().
//
// Update makes graph churn a first-class serving operation: it applies
// a GraphDelta to a copy-on-write clone of the graph, rebuilds only the
// changed sites' precomputed structure, warm-starts whatever the
// backend can (local power iterations seed from the previous solution;
// distributed runs re-ship only the changed shards), and publishes the
// result as a new immutable snapshot with one atomic pointer store.
// Rank never waits for Update and Update never waits for Rank:
// in-flight queries — however slow — complete on the snapshot they
// started on, bit-identical to an uncontended run, and the first Rank
// after Update sees the new graph. Mutating the graph *without* Update
// leaves the engine stale: queries fail with ErrGraphMutated (wrapped)
// instead of silently serving stale rankings.
type Engine interface {
	Rank(ctx context.Context, q Query) (*Result, error)
	Update(ctx context.Context, delta GraphDelta) error
}

// ErrUnsupportedQuery marks queries a backend cannot serve (e.g.
// document-layer personalization on the distributed engine). Check with
// errors.Is.
var ErrUnsupportedQuery = errors.New("lmmrank: unsupported query")

// EngineOptions fixes the graph-derivation, execution and admission
// choices an engine precomputes.
type EngineOptions struct {
	// SiteGraph controls SiteLink aggregation (§3.1), baked into the
	// precomputed structure.
	SiteGraph SiteGraphOptions
	// Parallelism caps the per-query local-DocRank fan-out
	// (0 = GOMAXPROCS). Concurrent serving under load usually wants 1 —
	// the cores are already busy answering distinct queries — while a
	// single caller wants the default.
	Parallelism int
	// MaxInFlight caps concurrently admitted Rank calls (0 = no cap).
	// Excess calls queue for a slot, honoring ctx cancellation — unless
	// RejectOverload is set, in which case they fail fast with
	// ErrOverloaded for the caller to shed or retry elsewhere.
	MaxInFlight    int
	RejectOverload bool
	// TenantQuota caps each Query.Tenant's concurrently admitted Rank
	// calls (0 = no keyed admission). The tenant slot is taken before
	// the engine-wide slot, so a tenant can never hold more than
	// TenantQuota of the MaxInFlight budget: size MaxInFlight ≥ the sum
	// of active tenants' quotas (or leave it 0) and no tenant can starve
	// another. Over-quota calls queue or fail fast per RejectOverload,
	// exactly as at the engine-wide gate.
	TenantQuota int
	// Coalesce merges concurrent identical queries: when several Rank
	// calls with the same fingerprint overlap, one computes and the
	// rest wait for it, each receiving its own caller-owned copy.
	// Queries with a custom DomainOf are never coalesced.
	Coalesce bool
	// CoalesceTol widens Coalesce from identical to *similar* queries:
	// personalization vectors are L1-normalized and bucketed to a grid
	// of step CoalesceTol/len(v), so two queries landing in the same
	// buckets share one solve. Personalized PageRank is 1-Lipschitz in
	// the L1 norm of its teleport vector, so every coalesced caller's
	// answer is within CoalesceTol (plus solver tolerance) of its exact
	// one. 0 (the default) coalesces only bit-identical vectors.
	CoalesceTol float64
	// TopKIndex maintains a per-snapshot top-k index over the warm local
	// solutions: the engine runs one refresh solve at construction and
	// after every Update (patching only changed sites' posting lists),
	// and serves eligible TopK queries — two-layer, default
	// damping/tolerance/budget, no document-layer personalization — by a
	// threshold merge over the index instead of a fresh solve plus a
	// full re-rank of all documents. Served rankings are the snapshot's
	// warm solution: within solver tolerance of an exact solve, and the
	// Top table is bit-identical to fully sorting that same solution.
	// LocalEngine only; DistEngine ignores it (its snapshots hold no
	// warm local solutions to index — the fleet owns them).
	TopKIndex bool
}

// validate rejects query-shape combinations no backend serves, keeping
// the two engines' contracts identical. Malformed personalization
// vectors are rejected here, at the serving boundary, rather than left
// to the solvers: a NaN or infinity would otherwise surface as a solver
// failure deep inside the run — or, distributedly, propagate through a
// barrier-free merge unchecked.
func (q Query) validate() error {
	if q.ThreeLayer && q.SitePersonalization != nil {
		return fmt.Errorf("%w: ThreeLayer replaces the site layer and cannot combine with SitePersonalization", ErrUnsupportedQuery)
	}
	if q.SitePersonalization != nil {
		if err := teleportable(q.SitePersonalization); err != nil {
			return fmt.Errorf("%w: SitePersonalization %s", ErrUnsupportedQuery, err)
		}
	}
	for site, v := range q.DocPersonalization {
		if err := teleportable(v); err != nil {
			return fmt.Errorf("%w: DocPersonalization[%d] %s", ErrUnsupportedQuery, site, err)
		}
	}
	return nil
}

// teleportable reports whether v can serve as a teleport bias: every
// entry finite and nonnegative, with positive total mass. Exact
// normalization is not demanded — the solvers normalize — but an
// all-zero vector has no distribution to normalize to.
func teleportable(v Vector) error {
	var mass float64
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("entry %d is not finite", i)
		}
		if x < 0 {
			return fmt.Errorf("entry %d is negative", i)
		}
		mass += x
	}
	if mass == 0 {
		return errors.New("has no mass to normalize")
	}
	return nil
}

// webConfig maps a Query onto the internal pipeline configuration.
func (q Query) webConfig(ctx context.Context, parallelism int) lmm.WebConfig {
	return lmm.WebConfig{
		Damping:             q.Damping,
		Tol:                 q.Tol,
		MaxIter:             q.MaxIter,
		SitePersonalization: q.SitePersonalization,
		DocPersonalization:  q.DocPersonalization,
		Parallelism:         parallelism,
		Ctx:                 ctx,
	}
}

// engineSnapshot is one immutable serving state of a LocalEngine: a
// graph, the Ranker built for exactly that graph, the pooled
// scratch-private clones, the warm-start seeds solved on that graph,
// and the in-flight table coalescing identical queries against it.
// Everything a query touches lives here, so a query that loaded a
// snapshot is completely insulated from any later Update.
type engineSnapshot struct {
	dg         *DocGraph
	base       *lmm.Ranker
	pool       *sync.Pool
	seedSite   Vector
	seedLocals []Vector
	flights    *flightGroup
	// topk is the maintained top-k index over seedLocals (nil unless
	// EngineOptions.TopKIndex): immutable like everything else here, and
	// sharing clean sites' posting lists with the previous snapshot.
	topk *topkIndex
}

func newEngineSnapshot(dg *DocGraph, rk *lmm.Ranker, seedSite Vector, seedLocals []Vector, topk *topkIndex) *engineSnapshot {
	return &engineSnapshot{
		dg:         dg,
		base:       rk,
		pool:       newRankerPool(rk),
		seedSite:   seedSite,
		seedLocals: seedLocals,
		flights:    newFlightGroup(),
		topk:       topk,
	}
}

// LocalEngine serves queries from one process: an lmm.Ranker core
// (SiteGraph, subgraphs, CSR matrices, dangling lists) precomputed once
// at construction, fronted by a sync.Pool of scratch-private Rankers.
// Concurrent goroutines serve in parallel — each Rank loads the current
// snapshot, borrows a pooled Ranker, runs the query phase against the
// shared immutable core, copies the result out and returns the scratch.
//
// Serving is lock-free multi-version: the whole serving state lives in
// one atomic pointer to an immutable snapshot. Update builds the next
// snapshot off to the side — the GraphDelta applies to a copy-on-write
// clone that shares every clean site's adjacency with the old graph by
// pointer — and publishes it with a single store. Queries never block
// an Update and an Update never blocks a query: a straggler that
// started before the swap finishes on its old snapshot, bit-identical
// to an uncontended run. MaxInFlight/RejectOverload add an admission
// cap in front and Coalesce folds concurrent identical queries into one
// computation (see EngineOptions).
type LocalEngine struct {
	parallelism int
	admit       *admitGate
	coalesce    bool
	coalesceTol float64
	topkIndex   bool
	stats       servingCounters

	// snap is the serving state; Rank loads it once and never looks
	// back. Only Update stores it.
	snap atomic.Pointer[engineSnapshot]

	// updateMu serializes Updates against each other (queries don't
	// take it). dirty accumulates changed sites across failed Updates:
	// on the nil-Apply path the graph mutates before the rebuild can
	// fail, so the sites stay recorded and the next successful Update
	// rebuilds them too — otherwise a later Update listing only its own
	// sites would bless the earlier edit's stale subgraphs.
	updateMu sync.Mutex
	dirty    map[SiteID]bool
}

var _ Engine = (*LocalEngine)(nil)

// newRankerPool wraps a prepared Ranker in a pool of scratch-private
// Share() clones — the pool lives inside one snapshot, so stale scratch
// can never serve a rebuilt core.
func newRankerPool(base *lmm.Ranker) *sync.Pool {
	return &sync.Pool{New: func() any { return base.Share() }}
}

// NewLocalEngine validates dg and precomputes the serving structure:
// the SiteGraph and every local subgraph with their transition matrices
// and PageRank chains, built eagerly (in parallel) so that queries only
// ever read shared state. The graph is captured by reference; mutate it
// only through Update (or build a new engine) — a mutation outside
// Update turns every later query into ErrGraphMutated. After an
// Apply-path Update the engine serves an evolved copy of the graph;
// read it back with DocGraph().
func NewLocalEngine(dg *DocGraph, opts EngineOptions) (*LocalEngine, error) {
	rk, err := lmm.NewRanker(dg, lmm.RankerOptions{SiteGraph: opts.SiteGraph})
	if err != nil {
		return nil, err
	}
	rk.Prepare()
	e := &LocalEngine{
		parallelism: opts.Parallelism,
		admit:       newAdmitGate(opts.MaxInFlight, opts.TenantQuota, opts.RejectOverload),
		coalesce:    opts.Coalesce,
		coalesceTol: opts.CoalesceTol,
		topkIndex:   opts.TopKIndex,
		dirty:       make(map[SiteID]bool),
	}
	snap := newEngineSnapshot(dg, rk, nil, nil, nil)
	if opts.TopKIndex {
		// The maintained index needs a warm solution to index, so a
		// TopKIndex engine front-loads the first solve to construction
		// time (a plain engine defers it to the first query/Update).
		wr, err := rk.Share().RankRefresh(nil, lmm.WebConfig{Parallelism: opts.Parallelism})
		if err != nil {
			return nil, err
		}
		seedLocals := cloneVectors(wr.LocalRanks)
		snap = newEngineSnapshot(dg, rk, wr.SiteRank.Clone(), seedLocals, newTopkIndex(dg, seedLocals))
	}
	snap.flights.shared = &e.stats.coalesced
	e.snap.Store(snap)
	return e, nil
}

// unionSites returns dirty ∪ changed as a slice without mutating dirty —
// the changed list a rebuild must honor so sites from earlier failed
// Updates are not forgotten, computed non-destructively so a rebuild
// that then fails leaves the pending set exactly as it was.
func unionSites(dirty map[SiteID]bool, changed []SiteID) []SiteID {
	out := make([]SiteID, 0, len(dirty)+len(changed))
	for s := range dirty {
		out = append(out, s)
	}
	for _, s := range changed {
		if !dirty[s] {
			out = append(out, s)
		}
	}
	return out
}

// Update applies one batch of graph churn and publishes a warm serving
// snapshot: delta.Apply (if any) runs against a copy-on-write clone of
// the served graph, only the changed sites' subgraphs/matrices/solvers
// are rebuilt, and a refresh solve — itself warm-started from the
// previous update's solution — becomes the seed every subsequent
// query's power iterations start from. Rankings served after Update
// agree with a cold rebuild to solver tolerance (pinned < 1e-9 in the
// tests) while doing measurably less iteration and allocation work.
// In-flight queries are never drained: they complete on the snapshot
// they started on while the rebuild proceeds beside them.
//
// On the Apply path an error leaves the engine exactly as before — the
// clone is discarded, nothing was mutated, a failed Update is a no-op.
// On the nil-Apply path the caller mutated the serving graph before
// calling, so a failure leaves queries failing with ErrGraphMutated
// until a successful Update; the delta's sites stay recorded either
// way on that path, so a later Update rebuilds them too.
func (e *LocalEngine) Update(ctx context.Context, delta GraphDelta) error {
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	cur := e.snap.Load()
	if delta.Apply == nil {
		// The serving graph is already mutated: record the sites before
		// anything fallible (even the ctx check) can return.
		for _, s := range delta.ChangedSites {
			e.dirty[s] = true
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		return e.rebuildAndPublish(ctx, cur, cur.dg, unionSites(e.dirty, nil))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	work := cur.dg.CloneCOW()
	if err := delta.Apply(work); err != nil {
		// The clone dies here; the serving graph never changed and the
		// delta's sites are not recorded — nothing needs rebuilding.
		return fmt.Errorf("lmmrank: update apply: %w", err)
	}
	return e.rebuildAndPublish(ctx, cur, work, unionSites(e.dirty, delta.ChangedSites))
}

// rebuildAndPublish builds the next snapshot over dg (the old graph on
// the nil-Apply path, a mutated COW clone otherwise) and publishes it.
// The pending-dirty set clears only on success.
func (e *LocalEngine) rebuildAndPublish(ctx context.Context, cur *engineSnapshot, dg *DocGraph, changed []SiteID) error {
	next, err := cur.base.RebuildOn(dg, changed)
	if err != nil {
		return err
	}
	next.Prepare()
	// The refresh solve: default query parameters, warm-started from the
	// previous seeds where the shapes survived (changed sites whose
	// roster grew start cold automatically — seeds are shape-checked
	// hints). Its solution is cloned into the new snapshot's seeds. A
	// TopKIndex engine refreshes instead of re-solving: clean sites keep
	// their previous local solutions bit-for-bit (a warm re-polish would
	// drift them by an ulp), which is exactly what makes patching only
	// the changed sites' posting lists sound.
	cfg := lmm.WebConfig{
		Parallelism: e.parallelism,
		SiteStart:   cur.seedSite,
		LocalStarts: cur.seedLocals,
		Ctx:         ctx,
	}
	var wr *lmm.WebResult
	if e.topkIndex {
		wr, err = next.Share().RankRefresh(changed, cfg)
	} else {
		wr, err = next.Share().Rank(cfg)
	}
	if err != nil {
		return normalizeCtxErr(ctx, err)
	}
	seedLocals := cloneVectors(wr.LocalRanks)
	var topk *topkIndex
	if e.topkIndex {
		changedSet := make(map[SiteID]bool, len(changed))
		for _, s := range changed {
			changedSet[s] = true
		}
		topk = cur.topk.patch(dg, seedLocals, changedSet)
	}
	snap := newEngineSnapshot(dg, next, wr.SiteRank.Clone(), seedLocals, topk)
	snap.flights.shared = &e.stats.coalesced
	e.snap.Store(snap)
	clear(e.dirty)
	return nil
}

// Rank answers one query. Safe for concurrent use; the result is
// caller-owned; a cancelled ctx aborts mid-iteration with ctx.Err().
// With MaxInFlight set the call first takes an admission slot (queueing
// or failing with ErrOverloaded per RejectOverload); with Coalesce set
// it may share one computation with concurrent identical queries.
func (e *LocalEngine) Rank(ctx context.Context, q Query) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.validate(); err != nil {
		return nil, err
	}
	if err := e.admit.acquire(ctx, q.Tenant); err != nil {
		if errors.Is(err, ErrOverloaded) {
			e.stats.overload(q.Tenant)
		}
		return nil, err
	}
	defer e.admit.release(q.Tenant)
	e.stats.ranks.Add(1)
	// One load pins the whole serving state: graph, core, pool, seeds.
	// An Update publishing mid-query swaps the pointer for *later*
	// queries; this one finishes on the snapshot it started on.
	snap := e.snap.Load()
	if e.coalesce {
		if key, ok := q.fingerprint(e.coalesceTol); ok {
			return snap.flights.do(ctx, key, func() (*Result, error) {
				return e.rankSnap(ctx, snap, q)
			})
		}
	}
	return e.rankSnap(ctx, snap, q)
}

// indexEligible reports whether q can serve from the snapshot's
// maintained top-k index: a two-layer TopK query at the default
// damping/tolerance/iteration budget with no document-layer
// personalization and no LocalRanks request — exactly the queries whose
// document layers equal the snapshot's warm solution, which is what the
// index indexes. Site-layer personalization is eligible: the Partition
// Theorem composes DocRank as siteWeight·localRank, so the posting
// lists are valid under any site weighting and only the small site
// layer needs solving.
func (snap *engineSnapshot) indexEligible(q Query) bool {
	return snap.topk != nil && q.TopK > 0 && !q.ThreeLayer &&
		q.DocPersonalization == nil && !q.WantLocalRanks &&
		q.Damping == 0 && q.Tol == 0 && q.MaxIter == 0
}

// rankFromIndex answers an eligible query from the snapshot's top-k
// index: the served DocRank is the warm solution composed under the
// query's site weights, and the Top table is a threshold merge over the
// per-site posting lists — bit-identical to fully sorting that DocRank,
// without touching the other N−k documents. ok=false means the query
// was not eligible and must take the full solve path.
func (e *LocalEngine) rankFromIndex(ctx context.Context, snap *engineSnapshot, q Query) (res *Result, ok bool, err error) {
	if !snap.indexEligible(q) {
		return nil, false, nil
	}
	weights := snap.seedSite
	siteIters := 0
	if q.SitePersonalization != nil {
		// Only the site layer depends on the personalization; re-solve
		// it (warm-started from the snapshot's πS) and keep the warm
		// document layers.
		rk := snap.pool.Get().(*lmm.Ranker)
		defer snap.pool.Put(rk)
		cfg := q.webConfig(ctx, e.parallelism)
		cfg.SiteStart = snap.seedSite
		sr, iters, serr := rk.RankSites(cfg)
		if serr != nil {
			return nil, true, normalizeCtxErr(ctx, serr)
		}
		// sr aliases the pooled Ranker's scratch; privatize before the
		// deferred Put can hand that scratch to another query.
		weights = sr.Clone()
		siteIters = iters
	}
	e.stats.topkIndex.Add(1)
	return &Result{
		DocRank:         lmm.ComposeDocRank(snap.dg, weights, snap.seedLocals),
		SiteRank:        weights.Clone(),
		SiteIterations:  siteIters,
		LocalIterations: make([]int, len(snap.dg.Sites)),
		Top:             snap.topk.top(snap.dg, weights, q.TopK),
	}, true, nil
}

// rankSnap runs one query against a pinned snapshot.
func (e *LocalEngine) rankSnap(ctx context.Context, snap *engineSnapshot, q Query) (*Result, error) {
	if res, ok, err := e.rankFromIndex(ctx, snap, q); ok {
		return res, err
	}
	rk := snap.pool.Get().(*lmm.Ranker)
	defer snap.pool.Put(rk)
	cfg := q.webConfig(ctx, e.parallelism)
	// Post-churn queries start their power iterations from the last
	// update's solution instead of uniform (nil seeds before the first
	// Update mean a cold start). The site seed is a two-layer πS and
	// stays out of three-layer queries: their upper stack ranks domains
	// and entry nodes, where a same-length site vector would be a
	// wrong-distribution seed, not a warm start. The local seeds apply
	// to both models — the document layer is identical in both.
	if !q.ThreeLayer {
		cfg.SiteStart = snap.seedSite
	}
	cfg.LocalStarts = snap.seedLocals

	var res *Result
	if q.ThreeLayer {
		wr, err := rk.Rank3(q.DomainOf, cfg)
		if err != nil {
			return nil, normalizeCtxErr(ctx, err)
		}
		res = &Result{
			DocRank: wr.DocRank.Clone(),
			// The domain-layer vectors (SiteWeights included) are
			// freshly allocated per query — already caller-owned.
			SiteRank:        wr.SiteWeights,
			Domains:         wr.Domains,
			DomainRank:      wr.DomainRank,
			DomainOfSite:    wr.DomainOfSite,
			SiteEntry:       wr.SiteEntry,
			LocalIterations: append([]int(nil), wr.LocalIterations...),
		}
		if q.WantLocalRanks {
			res.LocalRanks = cloneVectors(wr.LocalRanks)
		}
	} else {
		wr, err := rk.Rank(cfg)
		if err != nil {
			return nil, normalizeCtxErr(ctx, err)
		}
		res = &Result{
			DocRank:         wr.DocRank.Clone(),
			SiteRank:        wr.SiteRank.Clone(),
			SiteIterations:  wr.SiteIterations,
			LocalIterations: append([]int(nil), wr.LocalIterations...),
		}
		if q.WantLocalRanks {
			res.LocalRanks = cloneVectors(wr.LocalRanks)
		}
	}
	if q.TopK > 0 {
		res.Top = TopDocs(snap.dg, res.DocRank, q.TopK)
	}
	return res, nil
}

// DocGraph returns the graph this engine currently serves. Apply-path
// Updates evolve the graph through copy-on-write clones, so the
// returned pointer changes across Updates — re-fetch after updating
// rather than caching the construction-time pointer.
func (e *LocalEngine) DocGraph() *DocGraph { return e.snap.Load().dg }

// ServingStats returns a point-in-time copy of the engine's cumulative
// serving counters: admitted queries, admission rejections (total and
// per tenant), coalesced shares and top-k index serves.
func (e *LocalEngine) ServingStats() ServingStats { return e.stats.snapshot() }

// cloneVectors deep-copies a slice of score vectors.
func cloneVectors(vs []Vector) []Vector {
	out := make([]Vector, len(vs))
	for i, v := range vs {
		out[i] = v.Clone()
	}
	return out
}

// normalizeCtxErr maps a cancelled query's failure to the context's own
// error — the Engine contract — but only when the failure actually is a
// context abort somewhere down its chain. A query that died for its own
// reason (say ErrGraphMutated) keeps that error even if the context has
// since expired: a deadline must not mask a real fault.
func normalizeCtxErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// distSnapshot is one immutable serving state of a DistEngine: the
// graph, the structural Ranker built for exactly that graph, the
// in-flight table coalescing identical queries against it, and — when a
// partition strategy is configured — the pinned site→shard assignment
// every query under this snapshot serves with, plus the cut fraction
// measured when that assignment was last (re)computed. baseCut is the
// drift baseline: Update compares the carried assignment's cut against
// it to decide whether churn has degraded the placement enough to
// repartition online.
type distSnapshot struct {
	dg      *DocGraph
	rk      *lmm.Ranker
	flights *flightGroup
	asg     partition.Assignment
	baseCut float64
}

// DistEngine serves the same queries from a distributed fleet: local
// DocRanks run on the workers (through the coordinator's shard caches,
// loss recovery and optional compression), the small site layer runs
// centrally or as distributed power rounds, and the composed result
// comes back caller-owned with transport statistics attached. Rank
// calls are safe for concurrent use — the coordinator serializes runs —
// but do not overlap on the wire; for query-level concurrency put a
// LocalEngine replica next to the coordinator instead, or turn on
// Coalesce so identical concurrent queries share one wire run.
//
// Serving state is an atomic snapshot exactly as on LocalEngine: an
// Update rebuilds against a copy-on-write clone and publishes with one
// pointer store, never waiting on queries; a Rank that started before
// the swap completes against its old Ranker (whose graph never
// mutated). The wire itself still serializes at the coordinator.
type DistEngine struct {
	coord        *coordinator.Coordinator
	cfg          coordinator.Config
	admit        *admitGate
	coalesce     bool
	stats        servingCounters
	snap         atomic.Pointer[distSnapshot]
	updateMu     sync.Mutex
	dirty        map[SiteID]bool
	repartitions atomic.Int64
}

var _ Engine = (*DistEngine)(nil)

// NewDistEngine builds a distributed serving engine over a running
// cluster: a Ranker is precomputed for the graph (structure only — the
// fleet does the local solving) and every Rank reuses it, so repeated
// queries ship near-zero shard bytes and hash zero digest bytes. cfg
// supplies the transport knobs (SiteGraph aggregation, distributed or
// batched SiteRank, retry policy, compression) and the serving knobs
// (MaxInFlight, TenantQuota, RejectOverload, Coalesce, CoalesceTol);
// its per-query fields —
// Damping, Tol, MaxIter, SitePersonalization, ThreeLayer, DomainOf —
// are ignored and overwritten from each Query. Mutate the graph only
// through Update (or build a new engine); a mutation outside Update
// turns every later query into ErrGraphMutated.
func NewDistEngine(cl *Cluster, dg *DocGraph, cfg DistConfig) (*DistEngine, error) {
	rk, err := lmm.NewRanker(dg, lmm.RankerOptions{SiteGraph: cfg.SiteGraph})
	if err != nil {
		return nil, err
	}
	e := &DistEngine{
		coord:    cl.Coord,
		cfg:      cfg,
		admit:    newAdmitGate(cfg.MaxInFlight, cfg.TenantQuota, cfg.RejectOverload),
		coalesce: cfg.Coalesce,
		dirty:    make(map[SiteID]bool),
	}
	snap := &distSnapshot{dg: dg, rk: rk, flights: newFlightGroup()}
	snap.flights.shared = &e.stats.coalesced
	// With a partition strategy configured the engine pins the
	// assignment per snapshot: every query serves under the same
	// placement (stable digest caches) and Update measures cut-edge
	// drift against the baseline recorded here.
	if cfg.Partition != nil {
		snap.asg = cfg.Partition.Partition(dg, cl.Coord.NumWorkers())
		snap.baseCut = partition.CutFraction(rk.SiteGraph(), snap.asg.Owner)
	}
	e.snap.Store(snap)
	return e, nil
}

// Update applies one batch of graph churn to the distributed engine:
// delta.Apply (if any) runs against a copy-on-write clone, the Ranker
// is rebuilt incrementally (clean sites keep their precomputed
// structure), and the coordinator's digest memo is migrated so the next
// Rank re-hashes only the changed shards — which, through the workers'
// digest caches, then re-ships only the changed shards: a 1-site edit
// on an N-site web moves ~1/N of a cold load's bytes
// (Result.Dist.ShardsReused / ShardsReshipped account for it per run).
//
// Failure semantics match LocalEngine.Update: an Apply-path error is a
// no-op (the clone is discarded, nothing re-ships, nothing is marked
// dirty); a nil-Apply failure records the sites and queries fail with
// ErrGraphMutated until a successful Update — the wire never carries
// stale shards.
func (e *DistEngine) Update(ctx context.Context, delta GraphDelta) error {
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	cur := e.snap.Load()
	if delta.Apply == nil {
		for _, s := range delta.ChangedSites {
			e.dirty[s] = true
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		return e.rebuildAndPublish(cur, cur.dg, unionSites(e.dirty, nil))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	work := cur.dg.CloneCOW()
	if err := delta.Apply(work); err != nil {
		return fmt.Errorf("lmmrank: update apply: %w", err)
	}
	return e.rebuildAndPublish(cur, work, unionSites(e.dirty, delta.ChangedSites))
}

func (e *DistEngine) rebuildAndPublish(cur *distSnapshot, dg *DocGraph, changed []SiteID) error {
	next, err := cur.rk.RebuildOn(dg, changed)
	if err != nil {
		return err
	}
	e.coord.RefreshPrepared(cur.rk, next, changed)
	snap := &distSnapshot{dg: dg, rk: next, flights: newFlightGroup()}
	snap.flights.shared = &e.stats.coalesced
	if len(cur.asg.Owner) > 0 {
		snap.asg, snap.baseCut = e.carryAssignment(cur, dg, next, changed)
	}
	e.snap.Store(snap)
	clear(e.dirty)
	return nil
}

// carryAssignment decides the next snapshot's placement after churn.
// The zero-migration default extends the current assignment over any
// new sites; the resulting cut fraction is compared against the
// baseline recorded at the last (re)partition, and when the drift
// exceeds cfg.RepartitionThreshold the strategy's Rebalance
// re-optimizes online. A moved shard then migrates through the normal
// serving path: RefreshPrepared (above) has already re-keyed the digest
// memo, so the next Rank's KindOffer negotiation re-ships only shards
// whose new owner has never cached their content — a clean shard moving
// to a warm worker costs one digest exchange, not a payload.
func (e *DistEngine) carryAssignment(cur *distSnapshot, dg *DocGraph, rk *lmm.Ranker, changed []SiteID) (partition.Assignment, float64) {
	ext := partition.Extend(dg, cur.asg)
	frac := partition.CutFraction(rk.SiteGraph(), ext.Owner)
	thr := e.cfg.RepartitionThreshold
	if thr <= 0 || e.cfg.Partition == nil || frac-cur.baseCut <= thr {
		return ext, cur.baseCut
	}
	reb := e.cfg.Partition.Rebalance(dg, changed, ext)
	e.repartitions.Add(1)
	return reb, partition.CutFraction(rk.SiteGraph(), reb.Owner)
}

// Repartitions reports how many online repartitions Update has
// triggered over the engine's lifetime — always 0 unless a Partition
// strategy and a positive RepartitionThreshold are configured.
func (e *DistEngine) Repartitions() int { return int(e.repartitions.Load()) }

// PartitionOwners returns a copy of the site→shard assignment the
// current snapshot serves under, or nil when no Partition strategy was
// configured (the coordinator then places per run with its default).
func (e *DistEngine) PartitionOwners() []int {
	snap := e.snap.Load()
	if len(snap.asg.Owner) == 0 {
		return nil
	}
	return append([]int(nil), snap.asg.Owner...)
}

// Rank answers one query against the fleet. The context's deadline
// propagates into every wire exchange and a cancellation aborts the
// in-flight round, returning ctx.Err(). Admission and coalescing
// follow the cfg knobs (see NewDistEngine).
func (e *DistEngine) Rank(ctx context.Context, q Query) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.validate(); err != nil {
		return nil, err
	}
	if q.DocPersonalization != nil {
		return nil, fmt.Errorf("%w: document-layer personalization is not part of the distributed wire protocol; use LocalEngine", ErrUnsupportedQuery)
	}
	if err := e.admit.acquire(ctx, q.Tenant); err != nil {
		if errors.Is(err, ErrOverloaded) {
			e.stats.overload(q.Tenant)
		}
		return nil, err
	}
	defer e.admit.release(q.Tenant)
	e.stats.ranks.Add(1)
	snap := e.snap.Load()
	if e.coalesce {
		if key, ok := q.fingerprint(e.cfg.CoalesceTol); ok {
			return snap.flights.do(ctx, key, func() (*Result, error) {
				return e.rankSnap(ctx, snap, q)
			})
		}
	}
	return e.rankSnap(ctx, snap, q)
}

// rankSnap runs one distributed query against a pinned snapshot.
func (e *DistEngine) rankSnap(ctx context.Context, snap *distSnapshot, q Query) (*Result, error) {
	cfg := e.cfg
	cfg.Damping = q.Damping
	cfg.Tol = q.Tol
	cfg.MaxIter = q.MaxIter
	cfg.SitePersonalization = q.SitePersonalization
	cfg.ThreeLayer = q.ThreeLayer
	cfg.DomainOf = q.DomainOf
	if len(snap.asg.Owner) > 0 {
		// Serve under the snapshot's pinned placement (falls back to the
		// strategy inside the coordinator if the live fleet shrank).
		cfg.Assignment = snap.asg.Owner
	}
	dres, err := e.coord.RankPreparedCtx(ctx, snap.rk, cfg)
	if err != nil {
		return nil, err
	}
	stats := dres.Stats
	res := &Result{
		// Coordinator results are freshly allocated per run — already
		// caller-owned, no cloning needed.
		DocRank:         dres.DocRank,
		SiteRank:        dres.SiteRank,
		Domains:         dres.Domains,
		DomainRank:      dres.DomainRank,
		DomainOfSite:    dres.DomainOfSite,
		SiteEntry:       dres.SiteEntry,
		SiteIterations:  dres.Stats.SiteRankRounds,
		LocalIterations: dres.LocalIterations,
		Dist:            &stats,
	}
	if q.WantLocalRanks {
		res.LocalRanks = dres.LocalRanks
	}
	if q.TopK > 0 {
		res.Top = TopDocs(snap.dg, res.DocRank, q.TopK)
	}
	return res, nil
}

// DocGraph returns the graph this engine currently serves; as on
// LocalEngine, the pointer changes across Apply-path Updates.
func (e *DistEngine) DocGraph() *DocGraph { return e.snap.Load().dg }

// ServingStats returns a point-in-time copy of the engine's cumulative
// serving counters (TopKIndexServes stays 0 — the maintained index is a
// LocalEngine feature).
func (e *DistEngine) ServingStats() ServingStats { return e.stats.snapshot() }
