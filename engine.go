package lmmrank

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/lmm"
)

// Query is the unified serving request every Engine answers: one struct
// covers uniform rankings, site- and document-layer personalization
// (§3.2's two-layer personalization), top-k tables and the three-layer
// domain → site → page model. The zero value asks for the standard
// uniform two-layer ranking with default damping, tolerance and
// iteration budget.
type Query struct {
	// Damping is the PageRank damping factor / gatekeeper α. Zero is a
	// sentinel selecting the default 0.85 — an explicit damping of
	// exactly 0 cannot be requested, tiny positive values are honored.
	Damping float64
	// Tol and MaxIter bound every power-method run (0 = package
	// defaults).
	Tol     float64
	MaxIter int
	// SitePersonalization biases the site layer: the teleport
	// distribution over sites (length NumSites; nil = uniform).
	// Incompatible with ThreeLayer, which replaces the site layer.
	SitePersonalization Vector
	// DocPersonalization biases individual sites' document layers:
	// per-site teleport vectors in local-index order; missing sites use
	// uniform. Served by LocalEngine only — DistEngine rejects it with
	// ErrUnsupportedQuery (per-site teleports are not part of the wire
	// protocol).
	DocPersonalization map[SiteID]Vector
	// ThreeLayer selects the three-layer (domain → site → page) model;
	// DomainOf groups sites into domains (nil = the registrable-domain
	// default). The Result gains Domains, DomainRank, DomainOfSite and
	// SiteEntry, and its SiteRank holds the per-site composition
	// weights DomainRank·SiteEntry.
	ThreeLayer bool
	DomainOf   func(siteName string) string
	// TopK, when positive, fills Result.Top with the k best documents
	// and their URLs in descending score order.
	TopK int
	// WantLocalRanks asks for Result.LocalRanks (each site's local
	// DocRank). Serving clients rarely need them; leaving this false
	// keeps the per-query copying to the global vectors.
	WantLocalRanks bool
}

// Result is a ranking answer. Every slice is freshly allocated and
// caller-owned: mutate it, retain it across queries, hand it to another
// goroutine — nothing aliases engine internals. (Scratch aliasing is an
// internal/ concern; it stops at this boundary.)
type Result struct {
	// DocRank is the global ranking per DocID, a probability
	// distribution.
	DocRank Vector
	// SiteRank is the site-layer distribution πS per SiteID — or, for a
	// ThreeLayer query, the per-site composition weights
	// DomainRank(dom(s))·SiteEntry(s).
	SiteRank Vector
	// Domains, DomainRank, DomainOfSite and SiteEntry carry the upper
	// layers of a ThreeLayer query (nil otherwise): the distinct domain
	// names in first-seen order, the top-layer distribution per domain
	// index, each site's domain index, and each site's entry
	// probability within its domain.
	Domains      []string
	DomainRank   Vector
	DomainOfSite []int
	SiteEntry    Vector
	// LocalRanks holds each site's local DocRank in local-index order;
	// filled only when Query.WantLocalRanks was set.
	LocalRanks []Vector
	// Top is the TopK table (nil when Query.TopK <= 0).
	Top []DocScore
	// SiteIterations and LocalIterations record power-method work:
	// site-layer iterations (or distributed rounds) and per-site local
	// iterations.
	SiteIterations  int
	LocalIterations []int
	// Dist carries the transport/cache statistics of a distributed
	// query (nil for LocalEngine results).
	Dist *DistStats
}

// GraphDelta describes one batch of graph churn for Engine.Update: which
// sites' content changed, and (optionally) the mutation itself.
//
// ChangedSites must list every site whose pages or links changed —
// including links *from* its documents to other sites' documents; sites
// appended beyond the previous roster are implicitly changed. The
// layered decomposition makes this list the whole cost model: only the
// listed sites' subgraphs, transition matrices and solvers are rebuilt
// (and, distributedly, re-shipped), everything else is reused.
//
// Apply, when non-nil, performs the mutation under the engine's update
// lock, after in-flight queries drain and before the rebuild — the
// race-free way to mutate a served graph. With a nil Apply the caller
// has already mutated the graph; that is only safe when no query was in
// flight during the mutation (the engine reads the graph while serving).
type GraphDelta struct {
	ChangedSites []SiteID
	Apply        func(dg *DocGraph) error
}

// Engine is the serving surface of the layered ranking model: one
// interface over the in-process and distributed backends. Rank answers
// one Query; implementations are safe for concurrent use, results are
// caller-owned, and a cancelled or expired context aborts the query
// mid-computation — between power iterations locally, between wire
// exchanges (or by interrupting a blocked one) distributedly — returning
// ctx.Err().
//
// Update makes graph churn a first-class serving operation: it applies
// a GraphDelta, rebuilds only the changed sites' precomputed structure,
// and warm-starts whatever the backend can (local power iterations seed
// from the previous solution; distributed runs re-ship only the changed
// shards). Update blocks until in-flight Rank calls drain, then swaps
// the serving structure atomically — concurrent Ranks are safe
// throughout and never observe a half-updated engine. Mutating the
// graph *without* Update leaves the engine stale: queries fail with
// ErrGraphMutated (wrapped) instead of silently serving stale rankings.
type Engine interface {
	Rank(ctx context.Context, q Query) (*Result, error)
	Update(ctx context.Context, delta GraphDelta) error
}

// ErrUnsupportedQuery marks queries a backend cannot serve (e.g.
// document-layer personalization on the distributed engine). Check with
// errors.Is.
var ErrUnsupportedQuery = errors.New("lmmrank: unsupported query")

// EngineOptions fixes the graph-derivation and execution choices an
// engine precomputes.
type EngineOptions struct {
	// SiteGraph controls SiteLink aggregation (§3.1), baked into the
	// precomputed structure.
	SiteGraph SiteGraphOptions
	// Parallelism caps the per-query local-DocRank fan-out
	// (0 = GOMAXPROCS). Concurrent serving under load usually wants 1 —
	// the cores are already busy answering distinct queries — while a
	// single caller wants the default.
	Parallelism int
}

// validate rejects query-shape combinations no backend serves, keeping
// the two engines' contracts identical.
func (q Query) validate() error {
	if q.ThreeLayer && q.SitePersonalization != nil {
		return fmt.Errorf("%w: ThreeLayer replaces the site layer and cannot combine with SitePersonalization", ErrUnsupportedQuery)
	}
	return nil
}

// webConfig maps a Query onto the internal pipeline configuration.
func (q Query) webConfig(ctx context.Context, parallelism int) lmm.WebConfig {
	return lmm.WebConfig{
		Damping:             q.Damping,
		Tol:                 q.Tol,
		MaxIter:             q.MaxIter,
		SitePersonalization: q.SitePersonalization,
		DocPersonalization:  q.DocPersonalization,
		Parallelism:         parallelism,
		Ctx:                 ctx,
	}
}

// LocalEngine serves queries from one process: an lmm.Ranker core
// (SiteGraph, subgraphs, CSR matrices, dangling lists) precomputed once
// at construction, fronted by a sync.Pool of scratch-private Rankers.
// Concurrent goroutines therefore serve in parallel — each Rank borrows
// a pooled Ranker, runs the query phase against the shared immutable
// core, copies the result out and returns the scratch — and throughput
// scales with GOMAXPROCS while a single caller pays about the same
// latency as a bare Ranker (queries hold only a shared read-lock, whose
// exclusive side Update takes to swap the core).
//
// Update is the churn path: only changed sites' structure is rebuilt
// (clean sites keep their subgraphs and chains by pointer), a refresh
// solve warm-started from the previous solution becomes the seed of
// every later query, and the new core replaces the old one atomically
// once in-flight queries drain.
type LocalEngine struct {
	parallelism int

	// mu orders queries (read side) against Update's core swap (write
	// side). dg's pointer is fixed; its contents mutate only inside
	// Update, under the write lock.
	mu         sync.RWMutex
	dg         *DocGraph
	base       *lmm.Ranker
	pool       *sync.Pool
	seedSite   Vector
	seedLocals []Vector
	// dirty accumulates changed sites across failed Updates: if Apply
	// mutated the graph but the rebuild or refresh solve then failed,
	// the sites stay recorded and the next (successful) Update rebuilds
	// them too — otherwise a later Update listing only its own sites
	// would bless the earlier edit's stale subgraphs into the new core.
	dirty map[SiteID]bool
}

var _ Engine = (*LocalEngine)(nil)

// newRankerPool wraps a prepared Ranker in a pool of scratch-private
// Share() clones — the unit Update swaps wholesale so stale scratch can
// never serve a rebuilt core.
func newRankerPool(base *lmm.Ranker) *sync.Pool {
	return &sync.Pool{New: func() any { return base.Share() }}
}

// NewLocalEngine validates dg and precomputes the serving structure:
// the SiteGraph and every local subgraph with their transition matrices
// and PageRank chains, built eagerly (in parallel) so that queries only
// ever read shared state. The graph is captured by reference; mutate it
// only through Update (or build a new engine) — a mutation outside
// Update turns every later query into ErrGraphMutated.
func NewLocalEngine(dg *DocGraph, opts EngineOptions) (*LocalEngine, error) {
	rk, err := lmm.NewRanker(dg, lmm.RankerOptions{SiteGraph: opts.SiteGraph})
	if err != nil {
		return nil, err
	}
	rk.Prepare()
	return &LocalEngine{
		dg:          dg,
		base:        rk,
		parallelism: opts.Parallelism,
		pool:        newRankerPool(rk),
		dirty:       make(map[SiteID]bool),
	}, nil
}

// mergeDirty folds delta.ChangedSites into the engine's pending-dirty
// set and returns the union as a slice — the changed list a rebuild
// must honor so sites from earlier failed Updates are not forgotten.
func mergeDirty(dirty map[SiteID]bool, changed []SiteID) []SiteID {
	for _, s := range changed {
		dirty[s] = true
	}
	out := make([]SiteID, 0, len(dirty))
	for s := range dirty {
		out = append(out, s)
	}
	return out
}

// Update applies one batch of graph churn and swaps in a warm serving
// core: delta.Apply (if any) runs once in-flight queries drain, only the
// changed sites' subgraphs/matrices/solvers are rebuilt, and a refresh
// solve — itself warm-started from the previous update's solution —
// becomes the seed every subsequent query's power iterations start from.
// Rankings served after Update agree with a cold rebuild to solver
// tolerance (pinned < 1e-9 in the tests) while doing measurably less
// iteration and allocation work.
//
// On error the engine keeps its previous core. If the graph content was
// already changed by then (Apply succeeded but the rebuild or refresh
// solve failed, or the caller mutated without Apply), queries fail with
// ErrGraphMutated until a successful Update — stale structure is never
// served silently.
func (e *LocalEngine) Update(ctx context.Context, delta GraphDelta) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	// Record the delta's sites before doing anything fallible: if Apply
	// (or the rebuild, or the refresh solve) fails after the graph
	// changed, they stay pending and the next successful Update rebuilds
	// them too.
	changed := mergeDirty(e.dirty, delta.ChangedSites)
	if delta.Apply != nil {
		if err := delta.Apply(e.dg); err != nil {
			return fmt.Errorf("lmmrank: update apply: %w", err)
		}
	}
	next, err := e.base.Rebuild(changed)
	if err != nil {
		return err
	}
	next.Prepare()
	// The refresh solve: default query parameters, warm-started from the
	// previous seeds where the shapes survived (changed sites whose
	// roster grew start cold automatically — seeds are shape-checked
	// hints). Its solution is cloned into the new seed snapshot.
	wr, err := next.Share().Rank(lmm.WebConfig{
		Parallelism: e.parallelism,
		SiteStart:   e.seedSite,
		LocalStarts: e.seedLocals,
		Ctx:         ctx,
	})
	if err != nil {
		return normalizeCtxErr(ctx, err)
	}
	e.seedSite = wr.SiteRank.Clone()
	e.seedLocals = cloneVectors(wr.LocalRanks)
	e.base = next
	e.pool = newRankerPool(next)
	clear(e.dirty)
	return nil
}

// Rank answers one query. Safe for concurrent use; the result is
// caller-owned; a cancelled ctx aborts mid-iteration with ctx.Err().
func (e *LocalEngine) Rank(ctx context.Context, q Query) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.validate(); err != nil {
		return nil, err
	}
	// The read lock spans the whole query: Update cannot swap the core —
	// or mutate the graph — under a running Rank, and queries proceed
	// concurrently against the same core.
	e.mu.RLock()
	defer e.mu.RUnlock()
	pool := e.pool
	rk := pool.Get().(*lmm.Ranker)
	defer pool.Put(rk)
	cfg := q.webConfig(ctx, e.parallelism)
	// Post-churn queries start their power iterations from the last
	// update's solution instead of uniform (nil seeds before the first
	// Update mean a cold start, exactly the old behavior).
	cfg.SiteStart = e.seedSite
	cfg.LocalStarts = e.seedLocals

	var res *Result
	if q.ThreeLayer {
		wr, err := rk.Rank3(q.DomainOf, cfg)
		if err != nil {
			return nil, normalizeCtxErr(ctx, err)
		}
		res = &Result{
			DocRank: wr.DocRank.Clone(),
			// The domain-layer vectors (SiteWeights included) are
			// freshly allocated per query — already caller-owned.
			SiteRank:        wr.SiteWeights,
			Domains:         wr.Domains,
			DomainRank:      wr.DomainRank,
			DomainOfSite:    wr.DomainOfSite,
			SiteEntry:       wr.SiteEntry,
			LocalIterations: append([]int(nil), wr.LocalIterations...),
		}
		if q.WantLocalRanks {
			res.LocalRanks = cloneVectors(wr.LocalRanks)
		}
	} else {
		wr, err := rk.Rank(cfg)
		if err != nil {
			return nil, normalizeCtxErr(ctx, err)
		}
		res = &Result{
			DocRank:         wr.DocRank.Clone(),
			SiteRank:        wr.SiteRank.Clone(),
			SiteIterations:  wr.SiteIterations,
			LocalIterations: append([]int(nil), wr.LocalIterations...),
		}
		if q.WantLocalRanks {
			res.LocalRanks = cloneVectors(wr.LocalRanks)
		}
	}
	if q.TopK > 0 {
		res.Top = TopDocs(e.dg, res.DocRank, q.TopK)
	}
	return res, nil
}

// DocGraph returns the graph this engine serves.
func (e *LocalEngine) DocGraph() *DocGraph { return e.dg }

// cloneVectors deep-copies a slice of score vectors.
func cloneVectors(vs []Vector) []Vector {
	out := make([]Vector, len(vs))
	for i, v := range vs {
		out[i] = v.Clone()
	}
	return out
}

// normalizeCtxErr maps any failure of a cancelled query to the
// context's own error, the Engine contract.
func normalizeCtxErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// DistEngine serves the same queries from a distributed fleet: local
// DocRanks run on the workers (through the coordinator's shard caches,
// loss recovery and optional compression), the small site layer runs
// centrally or as distributed power rounds, and the composed result
// comes back caller-owned with transport statistics attached. Rank
// calls are safe for concurrent use — the coordinator serializes runs —
// but do not overlap on the wire; for query-level concurrency put a
// LocalEngine replica next to the coordinator instead.
type DistEngine struct {
	coord *coordinator.Coordinator
	cfg   coordinator.Config

	// mu orders queries (read side) against Update's Ranker swap (write
	// side); the coordinator additionally serializes runs on the wire.
	mu sync.RWMutex
	dg *DocGraph
	rk *lmm.Ranker
	// dirty accumulates changed sites across failed Updates, exactly as
	// on LocalEngine: sites mutated by an Update that then failed must
	// still be rebuilt (and their shards re-shipped) by the next one.
	dirty map[SiteID]bool
}

var _ Engine = (*DistEngine)(nil)

// NewDistEngine builds a distributed serving engine over a running
// cluster: a Ranker is precomputed for the graph (structure only — the
// fleet does the local solving) and every Rank reuses it, so repeated
// queries ship near-zero shard bytes and hash zero digest bytes. cfg
// supplies the transport knobs (SiteGraph aggregation, distributed or
// batched SiteRank, retry policy, compression); its per-query fields —
// Damping, Tol, MaxIter, SitePersonalization, ThreeLayer, DomainOf —
// are ignored and overwritten from each Query. Mutate the graph only
// through Update (or build a new engine); a mutation outside Update
// turns every later query into ErrGraphMutated.
func NewDistEngine(cl *Cluster, dg *DocGraph, cfg DistConfig) (*DistEngine, error) {
	rk, err := lmm.NewRanker(dg, lmm.RankerOptions{SiteGraph: cfg.SiteGraph})
	if err != nil {
		return nil, err
	}
	return &DistEngine{dg: dg, coord: cl.Coord, rk: rk, cfg: cfg, dirty: make(map[SiteID]bool)}, nil
}

// Update applies one batch of graph churn to the distributed engine:
// delta.Apply (if any) runs once in-flight queries drain, the Ranker is
// rebuilt incrementally (clean sites keep their precomputed structure),
// and the coordinator's digest memo is migrated so the next Rank
// re-hashes only the changed shards — which, through the workers'
// digest caches, then re-ships only the changed shards: a 1-site edit
// on an N-site web moves ~1/N of a cold load's bytes
// (Result.Dist.ShardsReused / ShardsReshipped account for it per run).
//
// On error the engine keeps its previous Ranker; if the graph content
// was already changed, queries fail with ErrGraphMutated until a
// successful Update — the wire never carries stale shards.
func (e *DistEngine) Update(ctx context.Context, delta GraphDelta) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	changed := mergeDirty(e.dirty, delta.ChangedSites)
	if delta.Apply != nil {
		if err := delta.Apply(e.dg); err != nil {
			return fmt.Errorf("lmmrank: update apply: %w", err)
		}
	}
	next, err := e.rk.Rebuild(changed)
	if err != nil {
		return err
	}
	e.coord.RefreshPrepared(e.rk, next, changed)
	e.rk = next
	clear(e.dirty)
	return nil
}

// Rank answers one query against the fleet. The context's deadline
// propagates into every wire exchange and a cancellation aborts the
// in-flight round, returning ctx.Err().
func (e *DistEngine) Rank(ctx context.Context, q Query) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := q.validate(); err != nil {
		return nil, err
	}
	if q.DocPersonalization != nil {
		return nil, fmt.Errorf("%w: document-layer personalization is not part of the distributed wire protocol; use LocalEngine", ErrUnsupportedQuery)
	}
	// The read lock spans the whole run: Update cannot swap the Ranker —
	// or mutate the graph — under an in-flight query.
	e.mu.RLock()
	defer e.mu.RUnlock()
	cfg := e.cfg
	cfg.Damping = q.Damping
	cfg.Tol = q.Tol
	cfg.MaxIter = q.MaxIter
	cfg.SitePersonalization = q.SitePersonalization
	cfg.ThreeLayer = q.ThreeLayer
	cfg.DomainOf = q.DomainOf
	dres, err := e.coord.RankPreparedCtx(ctx, e.rk, cfg)
	if err != nil {
		return nil, err
	}
	stats := dres.Stats
	res := &Result{
		// Coordinator results are freshly allocated per run — already
		// caller-owned, no cloning needed.
		DocRank:         dres.DocRank,
		SiteRank:        dres.SiteRank,
		Domains:         dres.Domains,
		DomainRank:      dres.DomainRank,
		DomainOfSite:    dres.DomainOfSite,
		SiteEntry:       dres.SiteEntry,
		SiteIterations:  dres.Stats.SiteRankRounds,
		LocalIterations: dres.LocalIterations,
		Dist:            &stats,
	}
	if q.WantLocalRanks {
		res.LocalRanks = dres.LocalRanks
	}
	if q.TopK > 0 {
		res.Top = TopDocs(e.dg, res.DocRank, q.TopK)
	}
	return res, nil
}

// DocGraph returns the graph this engine serves.
func (e *DistEngine) DocGraph() *DocGraph { return e.dg }
