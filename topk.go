package lmmrank

import (
	"container/heap"
	"sort"
)

// topkSite is one site's posting list in the maintained top-k index:
// the site's documents ordered by descending warm local score, ties
// toward the lower global DocID — exactly the order a full sort of the
// composed DocRank visits them in, because scaling by the site's
// nonnegative weight preserves it. Immutable once built, so snapshots
// may share clean sites' lists by pointer across Updates.
type topkSite struct {
	docs   []DocID
	scores []float64
}

// topkIndex is the incrementally maintained top-k structure of one
// serving snapshot: per-site posting lists over the snapshot's warm
// local solutions. Because the Partition Theorem composes DocRank as
// siteWeight(s)·localRank(s), the lists are valid for every site-layer
// weighting — uniform or personalized — and a query's top-k is a lazy
// threshold merge over them instead of a full re-rank of all documents.
// An Update patches only the dirty sites' lists; clean sites' lists are
// shared with the previous snapshot.
type topkIndex struct {
	sites []*topkSite
}

// buildTopkSite sorts one site's posting list from its roster and warm
// local solution, by (score desc, doc asc) — the rankutil.TopK order.
func buildTopkSite(roster []DocID, local Vector) *topkSite {
	pos := make([]int, len(roster))
	for i := range pos {
		pos[i] = i
	}
	sort.Slice(pos, func(a, b int) bool {
		i, j := pos[a], pos[b]
		if local[i] != local[j] {
			return local[i] > local[j]
		}
		return roster[i] < roster[j]
	})
	st := &topkSite{
		docs:   make([]DocID, len(roster)),
		scores: make([]float64, len(roster)),
	}
	for i, p := range pos {
		st.docs[i] = roster[p]
		st.scores[i] = local[p]
	}
	return st
}

// newTopkIndex builds the full index from a graph and its warm local
// solutions (one Vector per site, in local-index order).
func newTopkIndex(dg *DocGraph, locals []Vector) *topkIndex {
	ix := &topkIndex{sites: make([]*topkSite, len(dg.Sites))}
	for s := range dg.Sites {
		ix.sites[s] = buildTopkSite(dg.Sites[s].Docs, locals[s])
	}
	return ix
}

// patch derives the next snapshot's index after an Update: sites listed
// as changed (and any site whose roster size no longer matches its old
// list — the defensive case of an unlisted grown site) re-sort from the
// new local solution; every other site's list is shared by pointer with
// the previous index. A nil receiver builds everything.
func (ix *topkIndex) patch(dg *DocGraph, locals []Vector, changed map[SiteID]bool) *topkIndex {
	if ix == nil {
		return newTopkIndex(dg, locals)
	}
	next := &topkIndex{sites: make([]*topkSite, len(dg.Sites))}
	for s := range dg.Sites {
		if s < len(ix.sites) && !changed[SiteID(s)] &&
			len(ix.sites[s].docs) == len(dg.Sites[s].Docs) {
			next.sites[s] = ix.sites[s]
			continue
		}
		next.sites[s] = buildTopkSite(dg.Sites[s].Docs, locals[s])
	}
	return next
}

// topkCand is one heap candidate: a document with its composed score.
// cont marks the run member that, once popped, advances its site's
// cursor to the next tie run.
type topkCand struct {
	score float64
	doc   DocID
	site  int
	next  int // cursor after this candidate's tie run (valid when cont)
	cont  bool
}

// topkHeap orders candidates by descending composed score, ties toward
// the lower DocID — the total order of a full sort.
type topkHeap []topkCand

func (h topkHeap) Len() int { return len(h) }
func (h topkHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	return h[i].doc < h[j].doc
}
func (h topkHeap) Swap(i, j int)        { h[i], h[j] = h[j], h[i] }
func (h *topkHeap) Push(x any)          { *h = append(*h, x.(topkCand)) }
func (h *topkHeap) Pop() any            { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h *topkHeap) pushCand(c topkCand) { heap.Push(h, c) }

// pushRun pushes site s's next tie run starting at position i: every
// consecutive posting whose composed score w·local equals the head's.
// Within a site the composed scores are non-increasing (multiplying a
// descending list by a nonnegative weight cannot invert it), but
// floating-point scaling can collapse *distinct* local scores onto one
// composed score — and a full sort breaks those ties by DocID, an order
// the posting list does not guarantee inside a run. Pushing the whole
// run at once hands the tie-break to the heap comparator; the run
// member with the largest DocID (popped last among the run) carries the
// cursor to the next run.
func (h *topkHeap) pushRun(st *topkSite, s int, i int, w float64) {
	if i >= len(st.docs) {
		return
	}
	p := w * st.scores[i]
	j := i
	maxAt := i
	for j < len(st.docs) && w*st.scores[j] == p {
		if st.docs[j] > st.docs[maxAt] {
			maxAt = j
		}
		j++
	}
	for q := i; q < j; q++ {
		h.pushCand(topkCand{score: p, doc: st.docs[q], site: s, next: j, cont: q == maxAt})
	}
}

// top answers one top-k query from the index: a k-way threshold merge
// of the per-site posting lists under the query's site weights. The
// produced table is bit-identical — scores, documents and tie order —
// to rankutil.TopK over the fully composed DocRank, at O((S + k)·log S)
// instead of O(N·log N).
func (ix *topkIndex) top(dg *DocGraph, weights Vector, k int) []DocScore {
	if k <= 0 {
		return nil
	}
	// Successive heap pushes keep the invariant from an empty heap, so
	// seeding and merging use the same path.
	h := make(topkHeap, 0, len(ix.sites)+8)
	for s, st := range ix.sites {
		h.pushRun(st, s, 0, weights[s])
	}
	out := make([]DocScore, 0, k)
	for len(out) < k && h.Len() > 0 {
		c := heap.Pop(&h).(topkCand)
		out = append(out, DocScore{Doc: c.doc, URL: dg.Docs[c.doc].URL, Score: c.score})
		if c.cont {
			h.pushRun(ix.sites[c.site], c.site, c.next, weights[c.site])
		}
	}
	return out
}
