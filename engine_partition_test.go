package lmmrank

import (
	"context"
	"fmt"
	"testing"
)

// blockyTestWeb is a planted-block web where hostname-order placement
// scatters every coupling block.
func blockyTestWeb() *CampusWeb {
	return GenerateCampusWeb(CampusWebConfig{
		Seed:              13,
		Blocky:            true,
		Sites:             32,
		Blocks:            8,
		MeanSitePages:     10,
		IntraLinksPerPage: 2,
		InterLinkFraction: 0.3,
	})
}

// TestDistEnginePartitionStrategiesAgree is the acceptance pin of the
// tentpole: on the blocky web, Host and Aggregate placements agree with
// each other and with the single-process Layered Method < 1e-9, while
// Aggregate cuts ≥ 30% less inter-shard edge weight than Host.
func TestDistEnginePartitionStrategiesAgree(t *testing.T) {
	web := blockyTestWeb()
	ctx := context.Background()
	ref, err := LayeredDocRank(web.Graph, WebConfig{})
	if err != nil {
		t.Fatalf("LayeredDocRank: %v", err)
	}

	cuts := map[string]float64{}
	ranks := map[string]Vector{}
	for _, st := range []PartitionStrategy{HostPartition{}, AggregatePartition{Seed: 1}} {
		cl, err := StartCluster(4)
		if err != nil {
			t.Fatalf("StartCluster: %v", err)
		}
		eng, err := NewDistEngine(cl, web.Graph, DistConfig{Partition: st})
		if err != nil {
			cl.Close()
			t.Fatalf("NewDistEngine(%s): %v", st.Name(), err)
		}
		res, err := eng.Rank(ctx, Query{})
		cl.Close()
		if err != nil {
			t.Fatalf("Rank(%s): %v", st.Name(), err)
		}
		if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
			t.Errorf("‖%s − LayeredDocRank‖₁ = %g, want < 1e-9", st.Name(), d)
		}
		if owners := eng.PartitionOwners(); len(owners) != web.Graph.NumSites() {
			t.Errorf("%s: PartitionOwners length %d, want %d", st.Name(), len(owners), web.Graph.NumSites())
		}
		cuts[st.Name()] = res.Dist.CutFraction
		ranks[st.Name()] = res.DocRank
	}
	if d := ranks["aggregate"].L1Diff(ranks["host"]); d >= 1e-9 {
		t.Errorf("‖aggregate − host‖₁ = %g, want < 1e-9", d)
	}
	t.Logf("cut fraction: host %.4f, aggregate %.4f", cuts["host"], cuts["aggregate"])
	if cuts["host"] == 0 {
		t.Fatal("host placement cut nothing; blocky fixture is degenerate")
	}
	if cuts["aggregate"] > 0.7*cuts["host"] {
		t.Errorf("aggregate cut %.4f not ≥30%% below host cut %.4f", cuts["aggregate"], cuts["host"])
	}
}

// repartitionFixture hand-builds a two-block web whose churn makes
// exactly one clean site worth migrating. Sites 0–6 carry 6 documents
// each; block A = {0,1,2} and block B = {3,4,5,6} are internally
// coupled (4 site-graph weight per pair) with one weak A↔B bridge
// (0↔3, weight 2). With 2 workers the capacity is
// ceil(42/2·1.25) = 27 docs, so Aggregate seats A (18 docs) and
// B (24 docs) on separate shards.
func repartitionFixture(t *testing.T) *DocGraph {
	t.Helper()
	b := NewGraphBuilder()
	docs := make([][]DocID, 7)
	for s := range docs {
		host := fmt.Sprintf("site%d.example", s)
		for p := 0; p < 6; p++ {
			docs[s] = append(docs[s], b.AddDocInSite(fmt.Sprintf("http://%s/p%d", host, p), host))
		}
		for p := 0; p < 6; p++ {
			b.LinkIDs(docs[s][p], docs[s][(p+1)%6])
		}
	}
	couple := func(x, y int) {
		for i := 0; i < 2; i++ {
			b.LinkIDs(docs[x][i], docs[y][i])
			b.LinkIDs(docs[y][i], docs[x][i])
		}
	}
	couple(0, 1)
	couple(0, 2)
	couple(1, 2)
	for _, p := range [][2]int{{3, 4}, {3, 5}, {3, 6}, {4, 5}, {4, 6}, {5, 6}} {
		couple(p[0], p[1])
	}
	b.LinkIDs(docs[0][3], docs[3][3])
	b.LinkIDs(docs[3][3], docs[0][3])
	return b.Build()
}

// TestDistEngineOnlineRepartitionMigratesShards drives the online
// repartition end to end: churn couples site 2 (block A) heavily to
// site 4 (block B), drifting the cut fraction past the threshold; the
// engine reruns the strategy, which moves exactly the one clean site
// the capacity allows (site 4 — site 2 cannot fit on B's shard); and
// the migration travels through the digest negotiation, so
// ShardsReused stays at least the number of clean shards moved.
func TestDistEngineOnlineRepartitionMigratesShards(t *testing.T) {
	ctx := context.Background()
	for _, threshold := range []float64{0.1, 0} {
		t.Run(fmt.Sprintf("threshold=%g", threshold), func(t *testing.T) {
			dg := repartitionFixture(t)
			ns := dg.NumSites()
			cl, err := StartCluster(2)
			if err != nil {
				t.Fatalf("StartCluster: %v", err)
			}
			defer cl.Close()
			eng, err := NewDistEngine(cl, dg, DistConfig{
				Partition:            AggregatePartition{Seed: 1},
				RepartitionThreshold: threshold,
			})
			if err != nil {
				t.Fatalf("NewDistEngine: %v", err)
			}
			before := eng.PartitionOwners()
			if before[0] == before[3] {
				t.Fatalf("fixture degenerate: blocks A and B share a shard (%v)", before)
			}
			if _, err := eng.Rank(ctx, Query{}); err != nil {
				t.Fatalf("cold Rank: %v", err)
			}

			// Churn: site 2's pages grow heavy links into site 4 — the
			// coupling now straddles the shard boundary.
			err = eng.Update(ctx, GraphDelta{
				ChangedSites: []SiteID{2},
				Apply: func(dg *DocGraph) error {
					a, c := dg.Sites[2].Docs, dg.Sites[4].Docs
					for i := 0; i < 20; i++ {
						dg.G.AddLink(int(a[i%6]), int(c[(i+1)%6]))
					}
					return nil
				},
			})
			if err != nil {
				t.Fatalf("Update: %v", err)
			}

			after := eng.PartitionOwners()
			if threshold <= 0 {
				// Disabled: the placement is carried unchanged and no
				// repartition is counted.
				if eng.Repartitions() != 0 {
					t.Errorf("Repartitions = %d with disabled threshold, want 0", eng.Repartitions())
				}
				for s := range before {
					if after[s] != before[s] {
						t.Errorf("disabled threshold moved site %d: %d → %d", s, before[s], after[s])
					}
				}
				return
			}

			if eng.Repartitions() != 1 {
				t.Fatalf("Repartitions = %d, want 1", eng.Repartitions())
			}
			moved, cleanMoved := 0, 0
			for s := range before {
				if after[s] != before[s] {
					moved++
					if s != 2 {
						cleanMoved++
					}
				}
			}
			if cleanMoved < 1 {
				t.Fatalf("repartition moved no clean site (before %v, after %v)", before, after)
			}
			if after[2] != after[4] {
				t.Errorf("repartition left the new coupling cut: owners %v", after)
			}

			res, err := eng.Rank(ctx, Query{})
			if err != nil {
				t.Fatalf("post-repartition Rank: %v", err)
			}
			// The acceptance pin: migrated clean shards travel through the
			// digest negotiation, so the run reuses at least as many
			// shards as it moved clean — the cache is exploited, not
			// bypassed.
			if res.Dist.ShardsReused < cleanMoved {
				t.Errorf("ShardsReused = %d < moved clean shards %d", res.Dist.ShardsReused, cleanMoved)
			}
			if res.Dist.ShardsReused+res.Dist.ShardsReshipped != ns {
				t.Errorf("ShardsReused %d + ShardsReshipped %d ≠ %d sites",
					res.Dist.ShardsReused, res.Dist.ShardsReshipped, ns)
			}
			// Only the dirty site and the migrated-to-cold-cache shards
			// may re-ship.
			if res.Dist.ShardsReshipped > moved+1 {
				t.Errorf("ShardsReshipped = %d, want ≤ %d (dirty site + moved shards)", res.Dist.ShardsReshipped, moved+1)
			}
			// Update mutated a copy-on-write clone, so the reference needs
			// the same churn applied to a fresh fixture.
			refG := repartitionFixture(t)
			a, c := refG.Sites[2].Docs, refG.Sites[4].Docs
			for i := 0; i < 20; i++ {
				refG.G.AddLink(int(a[i%6]), int(c[(i+1)%6]))
			}
			ref, err := LayeredDocRank(refG, WebConfig{})
			if err != nil {
				t.Fatalf("LayeredDocRank: %v", err)
			}
			if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
				t.Errorf("‖post-repartition − LayeredDocRank‖₁ = %g, want < 1e-9", d)
			}
		})
	}
}
