package lmmrank

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// topkQueries are the index-eligible shapes: uniform and
// site-personalized two-layer TopK queries at default parameters.
func topkQueries(numSites int) []Query {
	pers := make(Vector, numSites)
	var mass float64
	for i := range pers {
		pers[i] = float64(i%5) + 1
		mass += pers[i]
	}
	for i := range pers {
		pers[i] /= mass
	}
	return []Query{
		{TopK: 25},
		{TopK: 25, SitePersonalization: pers},
	}
}

// TestTopKIndexBitIdentical is the acceptance pin of the maintained
// top-k index: for eligible queries the Top table must be bit-identical
// — scores, documents and tie order — to fully sorting the same served
// DocRank, before and after an Update, and the served DocRank must
// agree with an index-less engine's to < 1e-9.
func TestTopKIndexBitIdentical(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{TopKIndex: true})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	plain, err := NewLocalEngine(churnTestWeb().Graph, EngineOptions{})
	if err != nil {
		t.Fatalf("plain NewLocalEngine: %v", err)
	}

	check := func(t *testing.T, round string) {
		t.Helper()
		for qi, q := range topkQueries(eng.DocGraph().NumSites()) {
			before := eng.ServingStats().TopKIndexServes
			res, err := eng.Rank(ctx, q)
			if err != nil {
				t.Fatalf("%s query %d: %v", round, qi, err)
			}
			if got := eng.ServingStats().TopKIndexServes; got != before+1 {
				t.Fatalf("%s query %d bypassed the index (TopKIndexServes %d → %d)", round, qi, before, got)
			}
			want := TopDocs(eng.DocGraph(), res.DocRank, q.TopK)
			if !reflect.DeepEqual(res.Top, want) {
				t.Errorf("%s query %d: index Top differs from the full sort\n got %v\nwant %v", round, qi, res.Top, want)
			}
			exact, err := plain.Rank(ctx, q)
			if err != nil {
				t.Fatalf("%s plain query %d: %v", round, qi, err)
			}
			if d := res.DocRank.L1Diff(exact.DocRank); d >= 1e-9 {
				t.Errorf("%s query %d: ‖index − exact‖₁ = %g, want < 1e-9", round, qi, d)
			}
		}
	}
	check(t, "cold")

	edit := func(e *LocalEngine, sites ...SiteID) {
		t.Helper()
		err := e.Update(ctx, GraphDelta{
			ChangedSites: sites,
			Apply: func(dg *DocGraph) error {
				for _, s := range sites {
					editSite(t, dg, s)
				}
				return nil
			},
		})
		if err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	edit(eng, 3, 7)
	edit(plain, 3, 7)
	check(t, "post-update")
	edit(eng, 3)
	edit(plain, 3)
	check(t, "post-second-update")
}

// TestTopKIndexPatchShares pins the incremental maintenance: after an
// Update, clean sites' posting lists are shared by pointer with the
// previous snapshot — only the changed sites re-sorted.
func TestTopKIndexPatchShares(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{TopKIndex: true})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	old := eng.snap.Load().topk
	const changed = SiteID(5)
	err = eng.Update(ctx, GraphDelta{
		ChangedSites: []SiteID{changed},
		Apply: func(dg *DocGraph) error {
			editSite(t, dg, changed)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	next := eng.snap.Load().topk
	for s := range next.sites {
		shared := next.sites[s] == old.sites[s]
		if SiteID(s) == changed && shared {
			t.Errorf("changed site %d shares its posting list with the old snapshot", s)
		}
		if SiteID(s) != changed && !shared {
			t.Errorf("clean site %d was re-sorted instead of shared", s)
		}
	}
}

// TestTopKIndexTies drives the merge through maximal tie runs: linkless
// sites have uniform local ranks (whole-site tie runs), and two
// structurally identical sites tie cross-site too. The index must
// reproduce the full sort's DocID tie order exactly, including when k
// drains every document.
func TestTopKIndexTies(t *testing.T) {
	b := NewGraphBuilder()
	for s := 0; s < 3; s++ {
		for d := 0; d < 4; d++ {
			b.AddDocInSite(fmt.Sprintf("http://s%d.ex/p%d", s, d), fmt.Sprintf("s%d.ex", s))
		}
	}
	// Site 0 gets internal structure; sites 1 and 2 stay linkless twins.
	b.AddLink("http://s0.ex/p0", "http://s0.ex/p1")
	b.AddLink("http://s0.ex/p1", "http://s0.ex/p0")
	dg := b.Build()

	ctx := context.Background()
	eng, err := NewLocalEngine(dg, EngineOptions{TopKIndex: true})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	for _, k := range []int{1, 3, 7, 12, 50} {
		res, err := eng.Rank(ctx, Query{TopK: k})
		if err != nil {
			t.Fatalf("Rank k=%d: %v", k, err)
		}
		want := TopDocs(dg, res.DocRank, k)
		if !reflect.DeepEqual(res.Top, want) {
			t.Errorf("k=%d: index Top differs from the full sort\n got %v\nwant %v", k, res.Top, want)
		}
	}
}

// TestTopKIndexIneligibleFallsThrough: queries outside the index's
// contract — non-default solver parameters, document-layer
// personalization, three-layer, LocalRanks requests, no TopK — take the
// full solve path and still answer correctly.
func TestTopKIndexIneligibleFallsThrough(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{TopKIndex: true})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	docPers := map[SiteID]Vector{0: uniformLike(eng.DocGraph().Sites[0].Docs)}
	ineligible := []Query{
		{TopK: 5, Damping: 0.9},
		{TopK: 5, Tol: 1e-6},
		{TopK: 5, MaxIter: 50},
		{TopK: 5, DocPersonalization: docPers},
		{TopK: 5, ThreeLayer: true},
		{TopK: 5, WantLocalRanks: true},
		{},
	}
	for qi, q := range ineligible {
		before := eng.ServingStats().TopKIndexServes
		res, err := eng.Rank(ctx, q)
		if err != nil {
			t.Fatalf("ineligible query %d: %v", qi, err)
		}
		if got := eng.ServingStats().TopKIndexServes; got != before {
			t.Errorf("ineligible query %d served from the index", qi)
		}
		if !res.DocRank.IsDistribution(1e-8) {
			t.Errorf("ineligible query %d: DocRank is not a distribution", qi)
		}
		if q.TopK > 0 && len(res.Top) != q.TopK {
			t.Errorf("ineligible query %d: len(Top) = %d, want %d", qi, len(res.Top), q.TopK)
		}
	}
}

// uniformLike builds a uniform teleport vector the size of a roster.
func uniformLike(roster []DocID) Vector {
	v := make(Vector, len(roster))
	for i := range v {
		v[i] = 1 / float64(len(roster))
	}
	return v
}
