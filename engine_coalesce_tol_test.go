package lmmrank

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// TestFingerprintQuantization is the unit pin of similarity keys:
// at tol > 0, vectors within the grid share a key, far vectors do not,
// proportional vectors always do (the solvers normalize), and Tenant
// never enters the key; at tol = 0 only bit-identical vectors collide —
// today's behavior, unchanged.
func TestFingerprintQuantization(t *testing.T) {
	base := Vector{0.5, 0.25, 0.25}
	key := func(t *testing.T, q Query, tol float64) string {
		t.Helper()
		k, ok := q.fingerprint(tol)
		if !ok {
			t.Fatal("query not coalesceable")
		}
		return k
	}

	t.Run("nearSharesKey", func(t *testing.T) {
		near := base.Clone()
		near[0] += 1e-9 // far inside a 0.01/3 grid cell
		if key(t, Query{SitePersonalization: base}, 0.01) != key(t, Query{SitePersonalization: near}, 0.01) {
			t.Error("near-identical vectors got distinct keys at tol=0.01")
		}
	})
	t.Run("farDistinctKey", func(t *testing.T) {
		far := Vector{0.25, 0.5, 0.25}
		if key(t, Query{SitePersonalization: base}, 0.01) == key(t, Query{SitePersonalization: far}, 0.01) {
			t.Error("distant vectors collided at tol=0.01")
		}
	})
	t.Run("proportionalSharesKey", func(t *testing.T) {
		double := base.Clone()
		for i := range double {
			double[i] *= 2
		}
		if key(t, Query{SitePersonalization: base}, 0.01) != key(t, Query{SitePersonalization: double}, 0.01) {
			t.Error("proportional vectors got distinct keys (normalization lost)")
		}
	})
	t.Run("tenantExcluded", func(t *testing.T) {
		a := Query{Tenant: "a", SitePersonalization: base}
		b := Query{Tenant: "b", SitePersonalization: base}
		if key(t, a, 0) != key(t, b, 0) {
			t.Error("Tenant leaked into the fingerprint")
		}
	})
	t.Run("tolZeroExactBits", func(t *testing.T) {
		near := base.Clone()
		near[0] = math.Nextafter(near[0], 1)
		if key(t, Query{SitePersonalization: base}, 0) == key(t, Query{SitePersonalization: near}, 0) {
			t.Error("tol=0 coalesced vectors differing by one ulp")
		}
		if key(t, Query{SitePersonalization: base}, 0) != key(t, Query{SitePersonalization: base.Clone()}, 0) {
			t.Error("tol=0 split bit-identical vectors")
		}
	})
	t.Run("tolInKey", func(t *testing.T) {
		if key(t, Query{SitePersonalization: base}, 0.01) == key(t, Query{SitePersonalization: base}, 0.02) {
			t.Error("different tolerances produced the same key")
		}
	})
	t.Run("docPersonalizationQuantized", func(t *testing.T) {
		a := Query{DocPersonalization: map[SiteID]Vector{2: {0.5, 0.5}}}
		b := Query{DocPersonalization: map[SiteID]Vector{2: {0.5, 0.5 + 1e-9}}}
		if key(t, a, 0.01) != key(t, b, 0.01) {
			t.Error("near-identical doc personalization got distinct keys")
		}
		c := Query{DocPersonalization: map[SiteID]Vector{3: {0.5, 0.5}}}
		if key(t, a, 0.01) == key(t, c, 0.01) {
			t.Error("doc personalization on different sites collided")
		}
	})
}

// TestCoalesceTolRoutesAndBounds: with CoalesceTol set, a query routes
// to the same flight as a near-identical one (proved by planting a
// sentinel result under the neighbor's key), and the mathematical gap
// the coalesced caller accepts — between its exact answer and its
// neighbor's — stays below the tolerance, as the 1-Lipschitz bound
// promises.
func TestCoalesceTolRoutesAndBounds(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	const tol = 1e-3
	ns := web.Graph.NumSites()

	u := make(Vector, ns)
	v := make(Vector, ns)
	for i := range u {
		u[i] = 1 + float64(i%3)
		v[i] = u[i]
	}
	v[0] += 1e-7 // ‖û − v̂‖₁ ≪ tol after normalization
	normalize(u)
	normalize(v)

	eng, err := NewLocalEngine(web.Graph, EngineOptions{Coalesce: true, CoalesceTol: tol})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	qu := Query{SitePersonalization: u}
	qv := Query{SitePersonalization: v}
	ku, ok := qu.fingerprint(tol)
	if !ok {
		t.Fatal("personalized query not coalesceable")
	}
	if kv, _ := qv.fingerprint(tol); kv != ku {
		t.Fatal("near-identical queries did not share a fingerprint at the engine's tolerance")
	}

	// Plant u's (hypothetical) result under the shared key; v's Rank
	// must be served from it — sharing one solve.
	sentinel := &Result{DocRank: Vector{0.25, 0.75}, SiteIterations: 41}
	f := &flight{done: make(chan struct{}), res: sentinel}
	close(f.done)
	fg := eng.snap.Load().flights
	fg.mu.Lock()
	fg.m[ku] = f
	fg.mu.Unlock()
	res, err := eng.Rank(ctx, qv)
	fg.mu.Lock()
	delete(fg.m, ku)
	fg.mu.Unlock()
	if err != nil {
		t.Fatalf("coalesced Rank: %v", err)
	}
	if !reflect.DeepEqual(res, sentinel) {
		t.Error("similar query bypassed the shared flight")
	}
	if got := eng.ServingStats().CoalesceShared; got != 1 {
		t.Errorf("CoalesceShared = %d, want 1", got)
	}

	// The bound: u's exact answer, which a coalesced v-caller would be
	// served, is within tol of v's exact answer.
	exact, err := NewLocalEngine(churnTestWeb().Graph, EngineOptions{})
	if err != nil {
		t.Fatalf("exact NewLocalEngine: %v", err)
	}
	ru, err := exact.Rank(ctx, Query{SitePersonalization: u, Tol: 1e-12})
	if err != nil {
		t.Fatalf("exact Rank(u): %v", err)
	}
	rv, err := exact.Rank(ctx, Query{SitePersonalization: v, Tol: 1e-12})
	if err != nil {
		t.Fatalf("exact Rank(v): %v", err)
	}
	if d := ru.DocRank.L1Diff(rv.DocRank); d >= tol {
		t.Errorf("‖exact(u) − exact(v)‖₁ = %g, want < %g", d, tol)
	}
}

// normalize scales v in place to unit L1 mass — the solvers demand a
// probability distribution.
func normalize(v Vector) {
	var mass float64
	for _, x := range v {
		mass += x
	}
	for i := range v {
		v[i] /= mass
	}
}

// TestCoalesceTolZeroIsExact pins the degenerate contract: an engine
// with Coalesce but CoalesceTol=0 behaves exactly as before this knob
// existed — near-identical vectors do NOT share a flight.
func TestCoalesceTolZeroIsExact(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	ns := web.Graph.NumSites()
	u := make(Vector, ns)
	for i := range u {
		u[i] = 1 / float64(ns)
	}
	v := u.Clone()
	v[0] = math.Nextafter(v[0], 1)

	eng, err := NewLocalEngine(web.Graph, EngineOptions{Coalesce: true})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	ku, _ := Query{SitePersonalization: u}.fingerprint(0)
	sentinel := &Result{DocRank: Vector{1}, SiteIterations: 7}
	f := &flight{done: make(chan struct{}), res: sentinel}
	close(f.done)
	fg := eng.snap.Load().flights
	fg.mu.Lock()
	fg.m[ku] = f
	fg.mu.Unlock()
	defer func() {
		fg.mu.Lock()
		delete(fg.m, ku)
		fg.mu.Unlock()
	}()

	res, err := eng.Rank(ctx, Query{SitePersonalization: v})
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if reflect.DeepEqual(res, sentinel) {
		t.Error("tol=0 engine coalesced vectors differing by one ulp")
	}
	if !res.DocRank.IsDistribution(1e-8) {
		t.Error("uncoalesced result is not a distribution")
	}
}
