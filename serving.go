package lmmrank

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrOverloaded reports a Rank call rejected at admission: the engine's
// MaxInFlight cap is reached and RejectOverload is set. Shed the query
// or retry on another replica; check with errors.Is.
var ErrOverloaded = errors.New("lmmrank: engine overloaded")

// admitGate is a counting-semaphore admission cap in front of Rank. A
// nil gate (no cap configured) admits everything; all methods are
// nil-safe so call sites stay unconditional.
type admitGate struct {
	slots  chan struct{}
	reject bool
}

// newAdmitGate returns the gate for a MaxInFlight cap, or nil when no
// cap was asked for.
func newAdmitGate(max int, reject bool) *admitGate {
	if max <= 0 {
		return nil
	}
	return &admitGate{slots: make(chan struct{}, max), reject: reject}
}

// acquire takes an admission slot: immediately if one is free,
// otherwise failing fast with ErrOverloaded (reject mode) or queueing
// until a slot frees or ctx aborts (queue mode).
func (g *admitGate) acquire(ctx context.Context) error {
	if g == nil {
		return nil
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	default:
	}
	if g.reject {
		return ErrOverloaded
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an acquired slot. Must pair with a successful acquire.
func (g *admitGate) release() {
	if g == nil {
		return
	}
	<-g.slots
}

// flight is one in-progress computation other callers may wait on.
// res/err are written exactly once, before done closes; waiters read
// them only after <-done. waiters counts the callers coalesced onto
// this flight so far.
type flight struct {
	done    chan struct{}
	waiters atomic.Int32
	res     *Result
	err     error
}

// flightGroup coalesces concurrent identical queries: the first caller
// for a fingerprint becomes the leader and computes; callers arriving
// while the flight is open wait on it and receive their own deep copy
// of the leader's result (the leader gets a copy too — the stored
// result stays private, so no two callers ever alias memory). Each
// serving snapshot owns one group, so queries only ever coalesce onto
// work running against their own snapshot.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// do runs fn under single-flight semantics for key. A waiter whose own
// ctx aborts returns ctx.Err() without waiting further. A waiter whose
// leader failed with a context abort (the leader's ctx, not the
// waiter's) retries as a fresh leader if its own ctx is still live —
// one caller's deadline must not fail everyone coalesced behind it;
// any other leader error is shared as-is.
func (fg *flightGroup) do(ctx context.Context, key string, fn func() (*Result, error)) (*Result, error) {
	for {
		fg.mu.Lock()
		if f, ok := fg.m[key]; ok {
			fg.mu.Unlock()
			f.waiters.Add(1)
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if f.err != nil {
				if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
					if ctx.Err() == nil {
						continue
					}
					return nil, ctx.Err()
				}
				return nil, f.err
			}
			return cloneResult(f.res), nil
		}
		f := &flight{done: make(chan struct{})}
		fg.m[key] = f
		fg.mu.Unlock()
		f.res, f.err = fn()
		fg.mu.Lock()
		delete(fg.m, key)
		fg.mu.Unlock()
		close(f.done)
		if f.err != nil {
			return nil, f.err
		}
		return cloneResult(f.res), nil
	}
}

// fingerprint returns a collision-resistant key over every field that
// determines a query's answer, and whether the query is coalesceable at
// all. A non-nil DomainOf is not — function identity cannot be hashed —
// and such queries always compute individually. The encoding is
// injective: every variable-length field is length-prefixed and the
// map is serialized in sorted key order, so distinct queries cannot
// collide by concatenation.
func (q Query) fingerprint() (string, bool) {
	if q.DomainOf != nil {
		return "", false
	}
	h := sha256.New()
	var buf [8]byte
	putU := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	putF := func(f float64) { putU(math.Float64bits(f)) }
	putF(q.Damping)
	putF(q.Tol)
	putU(uint64(int64(q.MaxIter)))
	putU(uint64(int64(q.TopK)))
	var flags uint64
	if q.ThreeLayer {
		flags |= 1
	}
	if q.WantLocalRanks {
		flags |= 2
	}
	if q.SitePersonalization != nil {
		flags |= 4
	}
	if q.DocPersonalization != nil {
		flags |= 8
	}
	putU(flags)
	putU(uint64(len(q.SitePersonalization)))
	for _, v := range q.SitePersonalization {
		putF(v)
	}
	putU(uint64(len(q.DocPersonalization)))
	if len(q.DocPersonalization) > 0 {
		sites := make([]SiteID, 0, len(q.DocPersonalization))
		for s := range q.DocPersonalization {
			sites = append(sites, s)
		}
		sort.Slice(sites, func(a, b int) bool { return sites[a] < sites[b] })
		for _, s := range sites {
			putU(uint64(int64(s)))
			v := q.DocPersonalization[s]
			putU(uint64(len(v)))
			for _, x := range v {
				putF(x)
			}
		}
	}
	return string(h.Sum(nil)), true
}

// cloneResult deep-copies a Result so every coalesced caller owns its
// answer outright. Nil fields stay nil — a copy must be
// indistinguishable from an uncoalesced result for the same query.
func cloneResult(r *Result) *Result {
	if r == nil {
		return nil
	}
	c := &Result{SiteIterations: r.SiteIterations}
	if r.DocRank != nil {
		c.DocRank = r.DocRank.Clone()
	}
	if r.SiteRank != nil {
		c.SiteRank = r.SiteRank.Clone()
	}
	if r.Domains != nil {
		c.Domains = append([]string(nil), r.Domains...)
	}
	if r.DomainRank != nil {
		c.DomainRank = r.DomainRank.Clone()
	}
	if r.DomainOfSite != nil {
		c.DomainOfSite = append([]int(nil), r.DomainOfSite...)
	}
	if r.SiteEntry != nil {
		c.SiteEntry = r.SiteEntry.Clone()
	}
	if r.LocalRanks != nil {
		c.LocalRanks = cloneVectors(r.LocalRanks)
	}
	if r.Top != nil {
		c.Top = append([]DocScore(nil), r.Top...)
	}
	if r.LocalIterations != nil {
		c.LocalIterations = append([]int(nil), r.LocalIterations...)
	}
	if r.Dist != nil {
		stats := *r.Dist
		c.Dist = &stats
	}
	return c
}
