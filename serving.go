package lmmrank

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrOverloaded reports a Rank call rejected at admission: the tenant's
// quota or the engine-wide MaxInFlight cap is reached and RejectOverload
// is set. Shed the query or retry on another replica; check with
// errors.Is. The concrete error is an *OverloadError carrying the tenant
// that was turned away — extract it with errors.As when a load shedder
// needs to know who to back off.
var ErrOverloaded = errors.New("lmmrank: engine overloaded")

// OverloadError is the concrete admission-rejection error. It matches
// ErrOverloaded under errors.Is, so existing overload checks keep
// working; errors.As additionally exposes which tenant was rejected and
// at which gate, so per-tenant backoff and fairness accounting don't
// have to parse error strings.
type OverloadError struct {
	// Tenant is the Query.Tenant of the rejected call ("" for an
	// untenanted query).
	Tenant string
	// PerTenant reports whether the tenant's own quota rejected the
	// call (true) or the engine-wide MaxInFlight cap did (false).
	PerTenant bool
}

func (e *OverloadError) Error() string {
	if e.PerTenant {
		return fmt.Sprintf("lmmrank: engine overloaded (tenant %q quota)", e.Tenant)
	}
	return "lmmrank: engine overloaded (engine-wide cap)"
}

// Is makes errors.Is(err, ErrOverloaded) succeed for every admission
// rejection, keyed or engine-wide.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// admitGate is the admission control in front of Rank: an optional
// engine-wide counting semaphore (MaxInFlight) behind optional keyed
// per-tenant semaphores (TenantQuota), so one flooding tenant exhausts
// its own quota instead of the shared slots. A nil gate (no caps
// configured) admits everything; all methods are nil-safe so call sites
// stay unconditional.
//
// Acquisition order is tenant quota first, engine-wide cap second —
// both released in reverse on failure — so a tenant can never hold more
// engine slots than its quota, which is the starvation bound: size
// MaxInFlight at least Σ quotas (or leave it 0) and a quiet tenant's
// queries always find both gates open regardless of how hard another
// tenant floods.
type admitGate struct {
	slots  chan struct{} // engine-wide cap; nil = uncapped
	reject bool
	quota  int // per-tenant cap; 0 = no keyed admission

	mu      sync.Mutex
	tenants map[string]*tenantGate
}

// tenantGate is one tenant's semaphore. refs counts callers holding or
// waiting on it; the map entry lives exactly while refs > 0, so the
// tenant table stays bounded by concurrent admissions rather than by
// the set of tenant names ever seen.
type tenantGate struct {
	slots chan struct{}
	refs  int
}

// newAdmitGate returns the gate for the configured caps, or nil when
// neither an engine-wide cap nor a tenant quota was asked for.
func newAdmitGate(maxInFlight, tenantQuota int, reject bool) *admitGate {
	if maxInFlight <= 0 && tenantQuota <= 0 {
		return nil
	}
	g := &admitGate{reject: reject}
	if maxInFlight > 0 {
		g.slots = make(chan struct{}, maxInFlight)
	}
	if tenantQuota > 0 {
		g.quota = tenantQuota
		g.tenants = make(map[string]*tenantGate)
	}
	return g
}

// enter pins tenant's gate (creating it on first use) and takes a
// reference; every enter must pair with exactly one leave.
func (g *admitGate) enter(tenant string) *tenantGate {
	g.mu.Lock()
	defer g.mu.Unlock()
	tg := g.tenants[tenant]
	if tg == nil {
		tg = &tenantGate{slots: make(chan struct{}, g.quota)}
		g.tenants[tenant] = tg
	}
	tg.refs++
	return tg
}

// leave drops one reference on tenant's gate, deleting the entry when
// no caller holds or waits on it anymore.
func (g *admitGate) leave(tenant string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	tg := g.tenants[tenant]
	tg.refs--
	if tg.refs == 0 {
		delete(g.tenants, tenant)
	}
}

// acquire takes the admission slots for one query — the tenant's quota
// slot first (when TenantQuota is set), then an engine-wide slot (when
// MaxInFlight is set). Each gate admits immediately if a slot is free,
// otherwise fails fast with an *OverloadError (reject mode) or queues
// until a slot frees or ctx aborts (queue mode). On any failure every
// slot already taken is returned.
func (g *admitGate) acquire(ctx context.Context, tenant string) error {
	if g == nil {
		return nil
	}
	var tg *tenantGate
	if g.quota > 0 {
		tg = g.enter(tenant)
		select {
		case tg.slots <- struct{}{}:
		default:
			if g.reject {
				g.leave(tenant)
				return &OverloadError{Tenant: tenant, PerTenant: true}
			}
			select {
			case tg.slots <- struct{}{}:
			case <-ctx.Done():
				g.leave(tenant)
				return ctx.Err()
			}
		}
	}
	if g.slots != nil {
		select {
		case g.slots <- struct{}{}:
		default:
			if g.reject {
				g.releaseTenant(tenant, tg)
				return &OverloadError{Tenant: tenant}
			}
			select {
			case g.slots <- struct{}{}:
			case <-ctx.Done():
				g.releaseTenant(tenant, tg)
				return ctx.Err()
			}
		}
	}
	return nil
}

// releaseTenant undoes the tenant half of an acquire that failed at the
// engine-wide gate.
func (g *admitGate) releaseTenant(tenant string, tg *tenantGate) {
	if tg == nil {
		return
	}
	<-tg.slots
	g.leave(tenant)
}

// release returns the slots of a successful acquire for tenant.
func (g *admitGate) release(tenant string) {
	if g == nil {
		return
	}
	if g.slots != nil {
		<-g.slots
	}
	if g.quota > 0 {
		g.mu.Lock()
		tg := g.tenants[tenant]
		g.mu.Unlock()
		<-tg.slots
		g.leave(tenant)
	}
}

// ServingStats is a point-in-time snapshot of an engine's serving
// counters, read with LocalEngine.ServingStats / DistEngine.ServingStats.
// All counts are cumulative over the engine's lifetime.
type ServingStats struct {
	// Ranks counts queries admitted into the ranking phase (including
	// those served by coalescing onto another caller's computation).
	Ranks int64
	// Overloads counts Rank calls rejected with ErrOverloaded, at
	// either gate; TenantOverloads breaks the rejections down by the
	// rejected Query.Tenant.
	Overloads       int64
	TenantOverloads map[string]int64
	// CoalesceShared counts queries that were answered from another
	// caller's in-flight computation instead of solving themselves.
	CoalesceShared int64
	// TopKIndexServes counts queries answered from the snapshot's
	// maintained top-k index instead of a fresh solve + full re-rank.
	TopKIndexServes int64
}

// servingCounters is the engines' shared counter block behind
// ServingStats. The scalar counters are lock-free; the per-tenant
// rejection map is small and cold (rejections only) so a mutex is fine.
type servingCounters struct {
	ranks     atomic.Int64
	overloads atomic.Int64
	coalesced atomic.Int64
	topkIndex atomic.Int64

	mu              sync.Mutex
	tenantOverloads map[string]int64
}

// overload records one admission rejection.
func (c *servingCounters) overload(tenant string) {
	c.overloads.Add(1)
	c.mu.Lock()
	if c.tenantOverloads == nil {
		c.tenantOverloads = make(map[string]int64)
	}
	c.tenantOverloads[tenant]++
	c.mu.Unlock()
}

// snapshot copies the counters into a caller-owned ServingStats.
func (c *servingCounters) snapshot() ServingStats {
	s := ServingStats{
		Ranks:           c.ranks.Load(),
		Overloads:       c.overloads.Load(),
		CoalesceShared:  c.coalesced.Load(),
		TopKIndexServes: c.topkIndex.Load(),
	}
	c.mu.Lock()
	if len(c.tenantOverloads) > 0 {
		s.TenantOverloads = make(map[string]int64, len(c.tenantOverloads))
		for k, v := range c.tenantOverloads {
			s.TenantOverloads[k] = v
		}
	}
	c.mu.Unlock()
	return s
}

// flight is one in-progress computation other callers may wait on.
// res/err are written exactly once, before done closes; waiters read
// them only after <-done. waiters counts the callers coalesced onto
// this flight so far.
type flight struct {
	done    chan struct{}
	waiters atomic.Int32
	res     *Result
	err     error
}

// flightGroup coalesces concurrent similar queries: the first caller
// for a fingerprint becomes the leader and computes; callers arriving
// while the flight is open wait on it and receive their own deep copy
// of the leader's result (the leader gets a copy too — the stored
// result stays private, so no two callers ever alias memory). Each
// serving snapshot owns one group, so queries only ever coalesce onto
// work running against their own snapshot. shared, when non-nil, counts
// the waiters served from someone else's computation.
type flightGroup struct {
	mu     sync.Mutex
	m      map[string]*flight
	shared *atomic.Int64
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// do runs fn under single-flight semantics for key. A waiter whose own
// ctx aborts returns ctx.Err() without waiting further. A waiter whose
// leader failed with a context abort (the leader's ctx, not the
// waiter's) retries as a fresh leader if its own ctx is still live —
// one caller's deadline must not fail everyone coalesced behind it;
// any other leader error is shared as-is.
func (fg *flightGroup) do(ctx context.Context, key string, fn func() (*Result, error)) (*Result, error) {
	for {
		fg.mu.Lock()
		if f, ok := fg.m[key]; ok {
			fg.mu.Unlock()
			f.waiters.Add(1)
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if f.err != nil {
				if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
					if ctx.Err() == nil {
						continue
					}
					return nil, ctx.Err()
				}
				return nil, f.err
			}
			if fg.shared != nil {
				fg.shared.Add(1)
			}
			return cloneResult(f.res), nil
		}
		f := &flight{done: make(chan struct{})}
		fg.m[key] = f
		fg.mu.Unlock()
		f.res, f.err = fn()
		fg.mu.Lock()
		delete(fg.m, key)
		fg.mu.Unlock()
		close(f.done)
		if f.err != nil {
			return nil, f.err
		}
		return cloneResult(f.res), nil
	}
}

// fingerprint returns a collision-resistant key over every field that
// determines a query's answer, and whether the query is coalesceable at
// all. A non-nil DomainOf is not — function identity cannot be hashed —
// and such queries always compute individually. Tenant is deliberately
// excluded: it names the caller for admission, not the answer, and a
// coalesced result is a private copy either way. The encoding is
// injective per tolerance: every variable-length field is
// length-prefixed and the map is serialized in sorted key order, so
// distinct queries cannot collide by concatenation.
//
// tol is the similarity-coalescing tolerance (EngineOptions.CoalesceTol).
// At tol = 0 personalization vectors hash by exact float bits — only
// bit-identical queries share a key. At tol > 0 each vector is first
// L1-normalized (the solvers normalize too, so proportional vectors are
// the same query) and then bucketed to a grid of step tol/len(v): two
// vectors landing in the same buckets differ by less than tol in L1
// after normalization, and personalized PageRank is 1-Lipschitz in the
// L1 norm of its teleport vector, so the coalesced answer is within tol
// of each caller's exact answer (plus solver tolerance).
func (q Query) fingerprint(tol float64) (string, bool) {
	if q.DomainOf != nil {
		return "", false
	}
	h := sha256.New()
	var buf [8]byte
	putU := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	putF := func(f float64) { putU(math.Float64bits(f)) }
	putVec := func(v Vector) {
		putU(uint64(len(v)))
		if tol <= 0 {
			putU(0) // branch tag: exact bits
			for _, x := range v {
				putF(x)
			}
			return
		}
		var mass float64
		for _, x := range v {
			mass += x
		}
		if math.IsNaN(mass) || math.IsInf(mass, 0) || mass <= 0 {
			// Not a cleanly normalizable vector (validate rejects most of
			// these before admission; an infinite mass slips through) —
			// fall back to exact bits rather than divide by a degenerate
			// mass. The branch tag keeps a raw encoding from ever
			// colliding with a bucketed one.
			putU(0)
			for _, x := range v {
				putF(x)
			}
			return
		}
		putU(1) // branch tag: quantized buckets
		step := tol / float64(len(v))
		for _, x := range v {
			// The bucket stays a float (math.Round yields an exact
			// integer-valued float64), so enormous ratios degrade to
			// coarse buckets instead of overflowing an int conversion.
			putF(math.Round(x / mass / step))
		}
	}
	putF(tol)
	putF(q.Damping)
	putF(q.Tol)
	putU(uint64(int64(q.MaxIter)))
	putU(uint64(int64(q.TopK)))
	var flags uint64
	if q.ThreeLayer {
		flags |= 1
	}
	if q.WantLocalRanks {
		flags |= 2
	}
	if q.SitePersonalization != nil {
		flags |= 4
	}
	if q.DocPersonalization != nil {
		flags |= 8
	}
	putU(flags)
	putVec(q.SitePersonalization)
	putU(uint64(len(q.DocPersonalization)))
	if len(q.DocPersonalization) > 0 {
		sites := make([]SiteID, 0, len(q.DocPersonalization))
		for s := range q.DocPersonalization {
			sites = append(sites, s)
		}
		sort.Slice(sites, func(a, b int) bool { return sites[a] < sites[b] })
		for _, s := range sites {
			putU(uint64(int64(s)))
			putVec(q.DocPersonalization[s])
		}
	}
	return string(h.Sum(nil)), true
}

// cloneResult deep-copies a Result so every coalesced caller owns its
// answer outright. Nil fields stay nil — a copy must be
// indistinguishable from an uncoalesced result for the same query.
func cloneResult(r *Result) *Result {
	if r == nil {
		return nil
	}
	c := &Result{SiteIterations: r.SiteIterations}
	if r.DocRank != nil {
		c.DocRank = r.DocRank.Clone()
	}
	if r.SiteRank != nil {
		c.SiteRank = r.SiteRank.Clone()
	}
	if r.Domains != nil {
		c.Domains = append([]string(nil), r.Domains...)
	}
	if r.DomainRank != nil {
		c.DomainRank = r.DomainRank.Clone()
	}
	if r.DomainOfSite != nil {
		c.DomainOfSite = append([]int(nil), r.DomainOfSite...)
	}
	if r.SiteEntry != nil {
		c.SiteEntry = r.SiteEntry.Clone()
	}
	if r.LocalRanks != nil {
		c.LocalRanks = cloneVectors(r.LocalRanks)
	}
	if r.Top != nil {
		c.Top = append([]DocScore(nil), r.Top...)
	}
	if r.LocalIterations != nil {
		c.LocalIterations = append([]int(nil), r.LocalIterations...)
	}
	if r.Dist != nil {
		stats := *r.Dist
		c.Dist = &stats
	}
	return c
}
